"""Subscriptions and the per-broker subscription table (Section 4.2).

The paper's table row is ``(subscriber, filter, dl, pr, nb, NN_p, μ_p,
σ_p²)``.  :class:`TableRow` carries exactly that, plus the set of source
(publisher-hosting) brokers for which this broker lies on the routing path —
the provenance check that makes single-path routing duplicate-free on a
mesh (see :mod:`repro.pubsub.system`).

The table is column-oriented on the hot path: every installed row gets a
dense integer row id, its scheduling attributes (nn/mean/std/deadline/
price) land in table-level column arrays, and matching produces row-id
arrays — provenance filtering, duplicate settlement and per-hop grouping
are numpy operations, and a :class:`RowGroup`'s :class:`RowArrays` is a
fancy-index gather instead of a per-enqueue Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pubsub.filters import Filter
from repro.pubsub.matching import make_matcher
from repro.pubsub.message import Message
from repro.stats.normal import Normal


@dataclass(frozen=True, slots=True)
class Subscription:
    """A subscriber's standing interest.

    ``deadline_ms`` / ``price`` are the SSD scenario's ``dl`` / ``pr``;
    both are ``None`` in the pure PSD scenario (the paper then treats the
    price as 1, which :mod:`repro.core.metrics` does).
    """

    subscriber: str
    filter: Filter
    deadline_ms: float | None = None
    price: float | None = None

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0.0:
            raise ValueError(f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.price is not None and self.price < 0.0:
            raise ValueError(f"price must be non-negative, got {self.price}")


@dataclass(frozen=True, slots=True)
class TableRow:
    """One subscription-table entry at one broker.

    ``next_hop is None`` means the subscriber is local to this broker.
    ``nn``, ``rate`` describe the remaining path (``NN_p``, ``TR_p``).
    ``sources`` is the set of publisher-hosting brokers whose routed path
    to this subscriber passes through this broker; a message is forwarded
    on this row only if its source broker is in the set.

    ``path_id`` distinguishes rows when the multi-path routing extension
    installs several routes for the same subscriber (single-path routing
    always uses 0).

    ``min_msg_id`` is the subscription's epoch: the row only matches
    messages whose id is at least this value.  Message ids are assigned in
    publish-execution order, so a watermark taken at subscribe time makes
    a mid-run subscriber (churn wave, flash crowd) see exactly the
    messages published after it joined — the same set its membership in
    the interested-population count covers — and never an in-flight older
    message (which would over-deliver against Eq. 1's ``ts_i``).  0 (all
    rows installed before t=0) matches everything.
    """

    subscription: Subscription
    next_hop: str | None
    nn: int
    rate: Normal
    sources: frozenset[str]
    path_id: int = 0
    min_msg_id: int = 0

    @property
    def is_local(self) -> bool:
        return self.next_hop is None

    @property
    def subscriber(self) -> str:
        return self.subscription.subscriber

    @property
    def deadline_ms(self) -> float | None:
        return self.subscription.deadline_ms

    @property
    def price(self) -> float | None:
        return self.subscription.price


class RowGroup:
    """A matched set of rows of one table, addressed by row-id array.

    ``arrays`` gathers the table's column arrays by fancy index — no
    per-row attribute access — and ``sub_ids``/``subscribers`` expose the
    table's interned subscriber column for the batched delivery spine.
    ``rows`` materialises the :class:`TableRow` objects lazily (the
    per-row scoring paths and queue entries need them; batched local
    delivery never does).  Groups are snapshots taken at match time: the
    column references are captured immediately, so a later table
    recompilation cannot skew a group already handed out.  ``rows`` must
    be materialised before the table mutates again (the broker does so at
    enqueue time, inside the same processing step as the match).
    """

    __slots__ = ("row_ids", "_table", "_cols", "_arrays", "_rows", "_subscribers",
                 "_deadline", "_price")

    def __init__(self, table: "SubscriptionTable", row_ids: np.ndarray) -> None:
        self.row_ids = row_ids
        self._table = table
        self._cols = (table._c_cols5, table._c_sub, table._sub_names)
        self._arrays: RowArrays | None = None
        self._rows: list[TableRow] | None = None
        self._subscribers: list[str] | None = None
        self._deadline: np.ndarray | None = None
        self._price: np.ndarray | None = None

    @property
    def rows(self) -> list[TableRow]:
        if self._rows is None:
            by_id = self._table._rows_by_id
            self._rows = [by_id[i] for i in self.row_ids]
        return self._rows

    @property
    def arrays(self) -> "RowArrays":
        if self._arrays is None:
            # Five 1-D gathers over the stacked matrix's contiguous row
            # views (the generic 2-D advanced-indexing path is slower).
            cols5 = self._cols[0]
            ids = self.row_ids
            self._arrays = RowArrays(
                nn=cols5[0][ids], mean=cols5[1][ids], std=cols5[2][ids],
                deadline=cols5[3][ids], price=cols5[4][ids],
            )
        return self._arrays

    @property
    def deadline(self) -> np.ndarray:
        """The group's deadline column alone (``inf`` = unspecified); the
        local-delivery path needs just this and ``price``, not the full
        five-column :attr:`arrays` gather."""
        if self._deadline is None:
            self._deadline = self._cols[0][3][self.row_ids]
        return self._deadline

    @property
    def price(self) -> np.ndarray:
        """The group's price column alone (1.0 = unspecified)."""
        if self._price is None:
            self._price = self._cols[0][4][self.row_ids]
        return self._price

    @property
    def sub_ids(self) -> np.ndarray:
        """Table-interned subscriber ids, one per row (dense, stable)."""
        return self._cols[1][self.row_ids]

    @property
    def sub_names(self) -> list[str]:
        """The owning table's full interned-name column (append-only):
        ``sub_names[sub_ids[i]]`` is row ``i``'s subscriber.  Callers key
        translation caches on ``len(sub_names)``."""
        return self._cols[2]

    @property
    def subscribers(self) -> list[str]:
        """Subscriber names, one per row, via the table's interning
        (``_sub_names`` is append-only, so the capture is a snapshot)."""
        if self._subscribers is None:
            names = self._cols[2]
            self._subscribers = [names[i] for i in self.sub_ids]
        return self._subscribers

    def __len__(self) -> int:
        return int(self.row_ids.shape[0])

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, i: int) -> TableRow:
        return self.rows[i]


_EMPTY_IDS = np.empty(0, dtype=np.int64)


class SubscriptionTable:
    """All rows installed at one broker, with an index for matching.

    Rows are keyed by ``(subscriber, path_id)``: single-path routing keeps
    one row per subscriber (path 0), the multi-path extension several.
    Internally each row is interned to a dense integer id; the matcher is
    keyed by those ids and the scheduling attributes live in table-level
    column arrays (compiled lazily after mutations), so the match path
    works on int arrays end to end.  ``matcher_backend`` selects the
    matching engine (:func:`repro.pubsub.matching.make_matcher`).
    """

    def __init__(self, matcher_backend: str = "vector") -> None:
        self.matcher_backend = matcher_backend
        self._matcher = make_matcher(matcher_backend)  # keyed by row id
        self._rows_by_id: list[TableRow | None] = []
        self._id_of_key: dict[tuple[str, int], int] = {}
        #: subscriber -> row ids, so uninstall/__contains__ are O(own rows)
        #: instead of a scan over the whole table.
        self._ids_of_subscriber: dict[str, list[int]] = {}
        #: Row ids freed by uninstall, reused by the next install so the
        #: column arrays scale with peak live rows, not cumulative churn.
        self._free_ids: list[int] = []
        #: True once any row with path_id != 0 was installed: only
        #: multi-path routing can produce duplicate (hop, subscriber)
        #: pairs, so single-path tables skip dedup entirely.
        self._has_multipath_rows = False
        #: True once any row carries a subscribe-time epoch (> 0): tables
        #: of a frozen world skip the per-match epoch filter entirely.
        self._has_epoch_rows = False
        # Raw columns, one slot per row id (dead rows keep stale values;
        # the matcher never returns their ids).
        self._nn: list[float] = []
        self._mean: list[float] = []
        self._std: list[float] = []
        self._deadline: list[float] = []
        self._price: list[float] = []
        self._hop_id: list[int] = []  # -1 = local
        self._sub_id: list[int] = []
        self._min_msg: list[int] = []
        self._sources: list[frozenset[str]] = []
        #: Source sets interned to dense ids: rows overwhelmingly share a
        #: handful of distinct sets (one per routed subtree), so the
        #: per-source provenance mask is a membership probe over the
        #: distinct sets fancy-indexed through this column — O(distinct)
        #: instead of a Python frozenset probe per row.
        self._src_set: list[int] = []
        self._src_set_id_of: dict[frozenset[str], int] = {}
        self._src_set_by_id: list[frozenset[str]] = []
        self._hop_names: list[str] = []
        self._hop_id_of: dict[str, int] = {}
        self._sub_names: list[str] = []
        self._sub_id_of: dict[str, int] = {}
        #: Mutation counter: bumped on every install/uninstall.  The fused
        #: engine keys its speculative match memo on this, so a result
        #: computed ahead of time is only consumed if the table has not
        #: changed since (churn between lookahead and execution recomputes).
        self._version = 0
        #: Mutation journal, armed (set to a list) by the sharded engine
        #: when worker processes hold replicas of this table: every
        #: install/uninstall is recorded so replicas replay the identical
        #: op sequence (same interned ids, same version count) before
        #: matching.  ``None`` (the default) costs one branch per mutation.
        self.journal: list[tuple[str, object]] | None = None
        # Compiled views (rebuilt lazily after install/uninstall).
        self._dirty = True
        self._c_cols5 = np.empty((5, 0))
        self._c_nn = self._c_mean = self._c_std = np.empty(0)
        self._c_deadline = self._c_price = np.empty(0)
        self._c_hop = self._c_sub = self._c_rank = self._c_min_msg = _EMPTY_IDS
        self._c_src_set = _EMPTY_IDS
        self._c_rank_identity = False
        #: hop id -> rank in sorted-neighbor-name order (offset by one so
        #: slot 0 holds the local pseudo-hop −1, which must sort first).
        self._c_hop_rank = _EMPTY_IDS
        self._hop_by_rank: list[int] = []
        self._c_source_masks: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Mutation.
    # ------------------------------------------------------------------ #
    def install(self, row: TableRow, preds=None) -> None:
        """Install one row.  ``preds`` optionally carries the row filter's
        precomputed :func:`~repro.pubsub.filters.conjunction_predicates`
        result — a subscription installs the same filter at every broker
        on its path, so callers compute it once per subscription instead
        of once per row."""
        key = (row.subscriber, row.path_id)
        if key in self._id_of_key:
            raise KeyError(f"row {key!r} already installed")
        if row.next_hop is None:
            hop = -1
        else:
            hop = self._hop_id_of.get(row.next_hop)
            if hop is None:
                hop = self._hop_id_of[row.next_hop] = len(self._hop_names)
                self._hop_names.append(row.next_hop)
        sub = self._sub_id_of.get(row.subscriber)
        if sub is None:
            sub = self._sub_id_of[row.subscriber] = len(self._sub_names)
            self._sub_names.append(row.subscriber)
        deadline = row.deadline_ms if row.deadline_ms is not None else np.inf
        price = row.price if row.price is not None else 1.0
        src_set = self._src_set_id_of.get(row.sources)
        if src_set is None:
            src_set = self._src_set_id_of[row.sources] = len(self._src_set_by_id)
            self._src_set_by_id.append(row.sources)
        if self._free_ids:
            row_id = self._free_ids.pop()
            self._rows_by_id[row_id] = row
            self._nn[row_id] = float(row.nn)
            self._mean[row_id] = row.rate.mean
            self._std[row_id] = row.rate.std
            self._deadline[row_id] = deadline
            self._price[row_id] = price
            self._hop_id[row_id] = hop
            self._sub_id[row_id] = sub
            self._min_msg[row_id] = row.min_msg_id
            self._sources[row_id] = row.sources
            self._src_set[row_id] = src_set
        else:
            row_id = len(self._rows_by_id)
            self._rows_by_id.append(row)
            self._nn.append(float(row.nn))
            self._mean.append(row.rate.mean)
            self._std.append(row.rate.std)
            self._deadline.append(deadline)
            self._price.append(price)
            self._hop_id.append(hop)
            self._sub_id.append(sub)
            self._min_msg.append(row.min_msg_id)
            self._sources.append(row.sources)
            self._src_set.append(src_set)
        self._id_of_key[key] = row_id
        self._ids_of_subscriber.setdefault(row.subscriber, []).append(row_id)
        self._matcher.add(row_id, row.subscription.filter, preds=preds)
        if row.path_id != 0:
            self._has_multipath_rows = True
        if row.min_msg_id > 0:
            self._has_epoch_rows = True
        if self.journal is not None:
            self.journal.append(("i", row))
        self._dirty = True
        self._version += 1

    def install_many(self, pairs: list[tuple[TableRow, object]]) -> None:
        """Bulk install: end state identical to :meth:`install` per
        ``(row, preds)`` pair in order — same interned ids, same version
        count, same journal entries — but with per-row Python overhead
        hoisted and one grouped matcher ``add_many`` instead of a call
        per row (the 100k-subscriber build's hot path).
        """
        if not pairs:
            return
        id_of_key = self._id_of_key
        seen: set[tuple[str, int]] = set()
        for row, _ in pairs:
            key = (row.subscriber, row.path_id)
            if key in id_of_key or key in seen:
                raise KeyError(f"row {key!r} already installed")
            seen.add(key)
        hop_id_of = self._hop_id_of
        hop_names = self._hop_names
        sub_id_of = self._sub_id_of
        sub_names = self._sub_names
        src_id_of = self._src_set_id_of
        src_by_id = self._src_set_by_id
        free_ids = self._free_ids
        rows_by_id = self._rows_by_id
        ids_of_subscriber = self._ids_of_subscriber
        journal = self.journal
        items: list[tuple[int, object]] = []
        preds_list: list = []
        for row, preds in pairs:
            if row.next_hop is None:
                hop = -1
            else:
                hop = hop_id_of.get(row.next_hop)
                if hop is None:
                    hop = hop_id_of[row.next_hop] = len(hop_names)
                    hop_names.append(row.next_hop)
            sub = sub_id_of.get(row.subscriber)
            if sub is None:
                sub = sub_id_of[row.subscriber] = len(sub_names)
                sub_names.append(row.subscriber)
            deadline = row.deadline_ms if row.deadline_ms is not None else np.inf
            price = row.price if row.price is not None else 1.0
            src_set = src_id_of.get(row.sources)
            if src_set is None:
                src_set = src_id_of[row.sources] = len(src_by_id)
                src_by_id.append(row.sources)
            if free_ids:
                row_id = free_ids.pop()
                rows_by_id[row_id] = row
                self._nn[row_id] = float(row.nn)
                self._mean[row_id] = row.rate.mean
                self._std[row_id] = row.rate.std
                self._deadline[row_id] = deadline
                self._price[row_id] = price
                self._hop_id[row_id] = hop
                self._sub_id[row_id] = sub
                self._min_msg[row_id] = row.min_msg_id
                self._sources[row_id] = row.sources
                self._src_set[row_id] = src_set
            else:
                row_id = len(rows_by_id)
                rows_by_id.append(row)
                self._nn.append(float(row.nn))
                self._mean.append(row.rate.mean)
                self._std.append(row.rate.std)
                self._deadline.append(deadline)
                self._price.append(price)
                self._hop_id.append(hop)
                self._sub_id.append(sub)
                self._min_msg.append(row.min_msg_id)
                self._sources.append(row.sources)
                self._src_set.append(src_set)
            id_of_key[(row.subscriber, row.path_id)] = row_id
            ids_of_subscriber.setdefault(row.subscriber, []).append(row_id)
            items.append((row_id, row.subscription.filter))
            preds_list.append(preds)
            if row.path_id != 0:
                self._has_multipath_rows = True
            if row.min_msg_id > 0:
                self._has_epoch_rows = True
            if journal is not None:
                journal.append(("i", row))
        self._matcher.add_many(items, preds_list)
        self._dirty = True
        self._version += len(pairs)

    def uninstall(self, subscriber: str) -> None:
        """Remove every row (any path) of a subscriber."""
        ids = self._ids_of_subscriber.pop(subscriber, None)
        if ids is None:
            raise KeyError(subscriber)
        for row_id in ids:
            row = self._rows_by_id[row_id]
            self._rows_by_id[row_id] = None
            del self._id_of_key[(subscriber, row.path_id)]
            self._matcher.remove(row_id)
            self._free_ids.append(row_id)
        if self.journal is not None:
            self.journal.append(("u", subscriber))
        self._dirty = True
        self._version += 1

    # ------------------------------------------------------------------ #
    # Lookup.
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Monotone mutation counter (install/uninstall each bump it)."""
        return self._version

    def __len__(self) -> int:
        return len(self._id_of_key)

    def __contains__(self, subscriber: str) -> bool:
        return subscriber in self._ids_of_subscriber

    def row(self, subscriber: str, path_id: int = 0) -> TableRow:
        return self._rows_by_id[self._id_of_key[(subscriber, path_id)]]

    def rows(self) -> list[TableRow]:
        return [self._rows_by_id[self._id_of_key[k]] for k in sorted(self._id_of_key)]

    # ------------------------------------------------------------------ #
    # Matching.
    # ------------------------------------------------------------------ #
    def warm(self) -> None:
        """Build the compiled column views and the matcher's indexes now
        instead of on the first match.  Purely a latency move: the state
        reached is exactly what the first match would have built."""
        self._compile()
        warm = getattr(self._matcher, "warm", None)
        if warm is not None:
            warm()

    def _compile(self) -> None:
        if not self._dirty:
            return
        # The five scoring columns live as rows of one (5, n) matrix; the
        # per-column views share its memory, and a matched group gathers
        # all five with a single fancy index (``_c_cols5[:, ids]``).
        n_rows = len(self._nn)
        cols5 = np.empty((5, n_rows))
        cols5[0] = self._nn
        cols5[1] = self._mean
        cols5[2] = self._std
        cols5[3] = self._deadline
        cols5[4] = self._price
        self._c_cols5 = cols5
        self._c_nn = cols5[0]
        self._c_mean = cols5[1]
        self._c_std = cols5[2]
        self._c_deadline = cols5[3]
        self._c_price = cols5[4]
        self._c_hop = np.asarray(self._hop_id, dtype=np.int64)
        self._c_sub = np.asarray(self._sub_id, dtype=np.int64)
        self._c_min_msg = np.asarray(self._min_msg, dtype=np.int64)
        self._c_src_set = np.asarray(self._src_set, dtype=np.int64)
        # Rank = position in sorted (subscriber, path_id) order, the
        # canonical match order (dead ids keep a stale rank; the matcher
        # never returns them).  np.lexsort over (path_id, name) gives
        # exactly sorted-tuple order — numpy compares unicode by code
        # point, same as Python str — without a Python loop over the keys.
        n = len(self._rows_by_id)
        rank = np.zeros(n, dtype=np.int64)
        live = len(self._id_of_key)
        if live:
            keys = list(self._id_of_key)
            ids = np.fromiter(self._id_of_key.values(), dtype=np.int64, count=live)
            names = np.asarray([k[0] for k in keys])
            paths = np.fromiter((k[1] for k in keys), dtype=np.int64, count=live)
            order = np.lexsort((paths, names))
            rank[ids[order]] = np.arange(live, dtype=np.int64)
        self._c_rank = rank
        # Frozen worlds install in sorted order, making the rank the
        # identity — then canonical ordering is a plain sort of the
        # matched ids, no rank gather or argsort.
        self._c_rank_identity = live == n and bool(
            np.array_equal(rank, np.arange(n, dtype=np.int64))
        )
        # Neighbor-name rank per hop id (local −1 ranks below every name),
        # so grouping can emit neighbor groups already name-sorted — the
        # broker's deterministic enqueue order without a per-message sort.
        hop_rank = np.zeros(len(self._hop_names) + 1, dtype=np.int64)
        hop_rank[0] = -1
        order = sorted(range(len(self._hop_names)), key=self._hop_names.__getitem__)
        for r, h in enumerate(order):
            hop_rank[h + 1] = r
        self._c_hop_rank = hop_rank
        self._hop_by_rank = order
        self._c_source_masks = {}
        self._dirty = False

    def _source_mask(self, source_broker: str) -> np.ndarray:
        mask = self._c_source_masks.get(source_broker)
        if mask is None:
            # Membership over the distinct interned source sets, spread to
            # rows through the set-id column — O(distinct sets) Python
            # work however many rows share them.
            sets = self._src_set_by_id
            hit = np.fromiter(
                (source_broker in s for s in sets), dtype=bool, count=len(sets)
            )
            mask = hit[self._c_src_set] if len(sets) else np.empty(0, dtype=bool)
            self._c_source_masks[source_broker] = mask
        return mask

    def _matched_ids(self, message: Message) -> np.ndarray:
        """Row ids matching filter + provenance, in (subscriber, path_id)
        order — exactly the legacy ``sorted(keys)`` order."""
        self._compile()
        matcher = self._matcher
        if hasattr(matcher, "match_array"):
            ids = matcher.match_array(message.attributes)
            ascending = getattr(matcher, "array_results_sorted", False)
        else:
            keys = matcher.match(message.attributes)
            ids = np.fromiter(keys, dtype=np.int64, count=len(keys))
            ascending = False
        if ids.size == 0:
            return ids
        ids = ids[self._source_mask(message.source_broker)[ids]]
        if self._has_epoch_rows and ids.size:
            # Mid-run subscriptions only see messages published after they
            # joined (ids are publish-ordered); frozen tables skip this.
            ids = ids[self._c_min_msg[ids] <= message.msg_id]
        if ids.size:
            if self._c_rank_identity:
                # Boolean filters above preserve order, so ids that came
                # out of the matcher ascending are still ascending here.
                if not ascending:
                    ids = np.sort(ids)
            else:
                ids = ids[np.argsort(self._c_rank[ids], kind="stable")]
        return ids

    def match(self, message: Message) -> list[TableRow]:
        """Rows whose filter matches *and* whose sources include the
        message's origin broker (provenance check)."""
        return [self._rows_by_id[i] for i in self._matched_ids(message)]

    def match_grouped(self, message: Message) -> tuple[RowGroup, dict[str, RowGroup]]:
        """Split matches into (local rows, remote rows grouped by next hop).

        Within each group, rows are deduplicated by subscriber (multi-path
        can route the same subscriber through one broker via several paths
        sharing a next hop — the queue copy must count the subscriber's
        benefit once).  Local rows are likewise unique per subscriber.
        Groups come back as :class:`RowGroup` views whose ``arrays`` are
        column gathers.  The ``remote`` dict's insertion order is sorted
        neighbor-name order — the broker's deterministic enqueue order —
        so callers iterate it directly instead of re-sorting per message.
        """
        ids = self._matched_ids(message)
        if ids.size == 0:
            return RowGroup(self, _EMPTY_IDS), {}
        hop = self._c_hop[ids]
        if self._has_multipath_rows:
            # Deduplicate (next hop, subscriber) keeping the first row in
            # match order — the legacy setdefault semantics.  Single-path
            # tables hold one row per subscriber, so only multi-path
            # installs can collide and the pass is skipped otherwise.
            combo = (hop + 1) * len(self._sub_names) + self._c_sub[ids]
            _, first = np.unique(combo, return_index=True)
            if len(first) != len(ids):
                first.sort()
                ids, hop = ids[first], hop[first]
        # Group by neighbor-name rank (local −1 first): the stable sort
        # keeps match order inside each group and emits groups in sorted
        # neighbor order.
        hop_rank = self._c_hop_rank[hop + 1]
        order = np.argsort(hop_rank, kind="stable")
        ids, hop_rank = ids[order], hop_rank[order]
        boundaries = np.flatnonzero(hop_rank[1:] != hop_rank[:-1]) + 1
        local = RowGroup(self, _EMPTY_IDS)
        remote: dict[str, RowGroup] = {}
        start = 0
        for stop in list(boundaries) + [len(ids)]:
            group = RowGroup(self, ids[start:stop])
            r = int(hop_rank[start])
            if r < 0:
                local = group
            else:
                remote[self._hop_names[self._hop_by_rank[r]]] = group
            start = stop
        return local, remote

    def match_grouped_many(
        self, messages: list[Message]
    ) -> list[tuple[RowGroup, dict[str, RowGroup]]]:
        """Batch form of :meth:`match_grouped` for the fused engine's
        window lookahead: compile once, then match the window's messages
        against the same compiled columns (per-source provenance masks are
        built once and shared across the batch).  Matching itself is a
        pure per-message reduction — each message's result is exactly
        ``match_grouped(message)``, which the differential suite asserts.
        """
        self._compile()
        return [self.match_grouped(m) for m in messages]


@dataclass(frozen=True)
class RowArrays:
    """Vectorised view of a set of rows for the metric kernels.

    ``deadline``/``price`` use ``inf``/1.0 for unspecified values, matching
    the paper's PSD convention (price 1, deadline supplied by the message).
    """

    nn: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    deadline: np.ndarray
    price: np.ndarray

    @staticmethod
    def from_rows(rows: list[TableRow]) -> "RowArrays":
        n = len(rows)
        nn = np.empty(n)
        mean = np.empty(n)
        std = np.empty(n)
        deadline = np.empty(n)
        price = np.empty(n)
        for i, row in enumerate(rows):
            nn[i] = row.nn
            mean[i] = row.rate.mean
            std[i] = row.rate.std
            deadline[i] = row.deadline_ms if row.deadline_ms is not None else np.inf
            price[i] = row.price if row.price is not None else 1.0
        return RowArrays(nn=nn, mean=mean, std=std, deadline=deadline, price=price)

    def __len__(self) -> int:
        return int(self.nn.shape[0])
