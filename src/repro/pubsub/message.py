"""Published messages."""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping


@dataclass(frozen=True)
class Message:
    """An immutable published message.

    ``deadline_ms`` is the publisher-specified allowed delay (PSD scenario);
    ``None`` when only subscribers constrain delivery (SSD scenario).  Delay
    accounting is relative to ``publish_time`` (simulated ms), i.e. the
    paper's ``hdl(m) = now − publish_time``.
    """

    msg_id: int
    publisher: str
    source_broker: str
    attributes: Mapping[str, float]
    size_kb: float
    publish_time: float
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.size_kb <= 0.0:
            raise ValueError(f"size_kb must be positive, got {self.size_kb}")
        if self.deadline_ms is not None and self.deadline_ms <= 0.0:
            raise ValueError(f"deadline_ms must be positive, got {self.deadline_ms}")
        # Freeze the attribute mapping so messages are safely shared between
        # queue copies on different brokers.
        object.__setattr__(self, "attributes", MappingProxyType(dict(self.attributes)))

    def __getstate__(self) -> dict:
        """MappingProxyType is unpicklable; ship a plain dict and rebuild
        the read-only proxy on restore."""
        state = self.__dict__.copy()
        state["attributes"] = dict(self.attributes)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        object.__setattr__(self, "attributes", MappingProxyType(self.__dict__["attributes"]))

    def hdl(self, now: float) -> float:
        """Delay already incurred (``hdl(m)`` in Section 5.1)."""
        return now - self.publish_time

    def expired(self, now: float) -> bool:
        """True iff the publisher-specified deadline has passed."""
        return self.deadline_ms is not None and self.hdl(now) > self.deadline_ms

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ", ".join(f"{k}={v:g}" for k, v in sorted(self.attributes.items()))
        return f"m{self.msg_id}[{attrs}] from {self.publisher}"
