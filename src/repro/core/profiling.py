"""Per-stage cumulative timers for the hot event pipeline.

The dispatch-overhead claim behind the fused engine ("events are bounded
by per-event interpreter work, not numpy work") has to be *measured*, so
the pipeline's stages — kernel pop, match, enqueue, output-queue drain,
metrics settlement, log append — each carry a cheap cumulative timer.

Profiling is off by default and costs one module-attribute load plus a
branch per stage per event when disabled: hot sites read the module's
``ACTIVE`` slot and skip both clock calls while it is ``None``.  Enable
with :func:`enable` (the ``--profile`` flag on the run/scale CLIs does),
read the totals with :meth:`StageProfiler.report`.

Timers are wall-clock (``perf_counter``) and *inclusive per stage, not
nested*: stages are disjoint sections of the pipeline, so their sum
approximates total pipeline time and the remainder is interpreter/kernel
overhead between stages.
"""

from __future__ import annotations

from time import perf_counter

#: Canonical stage order for reports (stages not in this tuple are
#: appended alphabetically — ad-hoc timers are allowed).
STAGES: tuple[str, ...] = ("pop", "match", "enqueue", "drain", "metrics", "append")


class StageProfiler:
    """Cumulative ``(calls, seconds)`` per named pipeline stage."""

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, stage: str, dt: float) -> None:
        """Accumulate one timed section (``dt`` in seconds)."""
        self.seconds[stage] = self.seconds.get(stage, 0.0) + dt
        self.calls[stage] = self.calls.get(stage, 0) + 1

    def _ordered(self) -> list[str]:
        known = [s for s in STAGES if s in self.seconds]
        extra = sorted(s for s in self.seconds if s not in STAGES)
        return known + extra

    def report(self) -> dict[str, dict[str, float]]:
        """``{stage: {"seconds": ..., "calls": ...}}`` in canonical order."""
        return {
            s: {"seconds": self.seconds[s], "calls": self.calls[s]}
            for s in self._ordered()
        }

    def format_table(self) -> str:
        """Human-readable per-stage breakdown (for the CLIs and benches)."""
        lines = [f"{'stage':<10} {'calls':>12} {'seconds':>12} {'us/call':>10}"]
        for s in self._ordered():
            calls = self.calls[s]
            secs = self.seconds[s]
            per = (secs / calls * 1e6) if calls else 0.0
            lines.append(f"{s:<10} {calls:>12} {secs:>12.4f} {per:>10.1f}")
        lines.append(f"{'total':<10} {'':>12} {sum(self.seconds.values()):>12.4f}")
        return "\n".join(lines)


#: The active profiler, or ``None`` (profiling disabled).  Hot sites do
#: ``prof = profiling.ACTIVE`` once per event and only touch the clock
#: when it is set.
ACTIVE: StageProfiler | None = None


def enable() -> StageProfiler:
    """Install (and return) a fresh active profiler."""
    global ACTIVE
    ACTIVE = StageProfiler()
    return ACTIVE


def disable() -> StageProfiler | None:
    """Deactivate profiling; returns the profiler that was active."""
    global ACTIVE
    prof, ACTIVE = ACTIVE, None
    return prof


def timed(stage: str) -> "_Section":
    """Decorator-free helper for coarse call sites::

        with profiling.timed("analysis"):  # no-op when disabled
            ...

    Implemented as a tiny context manager; hot per-event sites inline the
    ``perf_counter`` pattern instead (a ``with`` block per event would
    cost more than the section it measures).
    """
    return _Section(stage)


class _Section:
    __slots__ = ("stage", "_t0")

    def __init__(self, stage: str) -> None:
        self.stage = stage
        self._t0 = 0.0

    def __enter__(self) -> "_Section":
        if ACTIVE is not None:
            self._t0 = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if ACTIVE is not None:
            ACTIVE.add(self.stage, perf_counter() - self._t0)
