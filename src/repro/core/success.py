"""Success probabilities (Section 5.1, Eqs. 4–5).

For message ``m`` on the current broker and subscription ``s`` with
remaining path ``p``:

``fdl(s, m) = NN_p · PD + size(m) · TR_p``  with ``TR_p ~ N(μ_p, σ_p²)``
(the paper assumes zero scheduling delay at downstream nodes), so

``success(s, m) = P(hdl(m) + fdl(s, m) ≤ adl(s))
               = Φ( ((adl − hdl − extra − NN_p · PD) / size − μ_p) / σ_p )``

where ``extra`` is 0 for EB and ``FT`` for the postponed variant EB′
(Eqs. 6–7).  ``adl`` is the subscriber's deadline in SSD, the message's in
PSD, and their minimum when both are present (the paper's "easily
extended" combined case).
"""

from __future__ import annotations

import math

import numpy as np

from repro.pubsub.message import Message
from repro.pubsub.subscription import TableRow
from repro.stats.normal import Normal, normal_cdf


def effective_deadline(row: TableRow, message: Message) -> float:
    """Allowed delay ``adl`` for this (subscription, message) pair.

    ``inf`` when neither side specified one (such pairs never constrain
    scheduling and always "succeed").
    """
    sub_dl = row.deadline_ms
    msg_dl = message.deadline_ms
    if sub_dl is None and msg_dl is None:
        return math.inf
    if sub_dl is None:
        return msg_dl  # type: ignore[return-value]
    if msg_dl is None:
        return sub_dl
    return min(sub_dl, msg_dl)


def effective_deadline_array(deadline_col: np.ndarray, message: Message) -> np.ndarray:
    """Vectorised :func:`effective_deadline` over a deadline column.

    ``deadline_col`` is a table/group column where unspecified subscriber
    deadlines are already ``inf`` (the :class:`~repro.pubsub.subscription.
    RowArrays` convention), so the scalar min-with-None ladder collapses
    to one ``np.minimum`` — identical bit patterns, one pass.
    """
    msg_dl = message.deadline_ms
    if msg_dl is None:
        return deadline_col
    return np.minimum(deadline_col, msg_dl)


def fdl_distribution(row: TableRow, size_kb: float, processing_delay_ms: float) -> Normal:
    """Distribution of the future delay ``fdl(s, m)`` (Eq. 4)."""
    return row.rate.scale(size_kb) + row.nn * processing_delay_ms


def success_probability(
    row: TableRow,
    message: Message,
    now: float,
    processing_delay_ms: float,
    extra_delay_ms: float = 0.0,
) -> float:
    """``P(hdl + extra + fdl ≤ adl)`` (Eq. 5; Eq. 7 with ``extra = FT``)."""
    adl = effective_deadline(row, message)
    if math.isinf(adl):
        return 1.0
    budget = adl - message.hdl(now) - extra_delay_ms - row.nn * processing_delay_ms
    # P(size * TR_p <= budget) with TR_p ~ N(mu, sigma^2).
    size = message.size_kb
    return normal_cdf(budget / size, row.rate.mean, row.rate.std)


def remaining_lifetime(row: TableRow, message: Message, now: float) -> float:
    """``adl − hdl`` for the RL baseline (may be negative when expired)."""
    adl = effective_deadline(row, message)
    if math.isinf(adl):
        return math.inf
    return adl - message.hdl(now)
