"""Queue disciplines: FIFO, RL, EB, PC, EBPC (Sections 5.1–5.3, 6.1).

A strategy ranks the entries of one output queue; the broker sends the
entry with the **highest score** (deterministic FIFO tie-break on the
enqueue sequence number).  Scores may depend on the current time — EB and
PC shrink as a message ages — so they are recomputed at each selection.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

from repro.core.context import SchedulingContext
from repro.core.metrics import (
    eb_pair_vec,
    ebpc_value,
    expected_benefit_vec,
    postponing_cost_vec,
)
from repro.core.success import effective_deadline
from repro.pubsub.message import Message
from repro.pubsub.subscription import RowArrays, RowGroup, TableRow


class QueueEntry:
    """One message copy waiting in one output queue.

    ``rows`` are the subscriptions reachable through this queue's neighbour
    that the message satisfies (fixed at enqueue time; the evaluation uses
    a static subscription population, as in the paper).  ``arrays`` is the
    vectorised view used by the metric kernels; the broker supplies it
    pre-gathered from the subscription table's column arrays, and it is
    built row by row only when a caller omits it.

    ``rows`` may be given as a :class:`~repro.pubsub.subscription.RowGroup`,
    in which case the :class:`TableRow` objects materialise only when a
    caller actually reads ``rows`` (the vectorised strategies never do).
    Deferred materialisation must happen before the source table mutates;
    :class:`~repro.core.queueing.ScheduledQueue` forces it on push for the
    backends that re-score entries later through ``rows``.
    """

    __slots__ = ("message", "enqueue_time", "seq", "arrays", "_rows")

    def __init__(
        self,
        message: Message,
        rows: RowGroup | Sequence[TableRow],
        enqueue_time: float,
        seq: int,
        arrays: RowArrays | None = None,
    ) -> None:
        self.message = message
        self.enqueue_time = enqueue_time
        self.seq = seq
        if not len(rows):
            raise ValueError("a queue entry must target at least one subscription")
        self._rows = rows
        if arrays is None:
            arrays = rows.arrays if hasattr(rows, "arrays") else RowArrays.from_rows(rows)
        elif len(arrays) != len(rows):
            raise ValueError(
                f"arrays/rows mismatch: {len(arrays)} != {len(rows)}"
            )
        self.arrays = arrays

    @property
    def rows(self) -> list[TableRow]:
        rows = self._rows
        if type(rows) is not list:
            rows = self._rows = rows.rows
        return rows


class Strategy(ABC):
    """Interface all queue disciplines implement."""

    #: Human-readable name used by the registry and reports.
    name: str = "abstract"

    #: Whether the broker should apply the ε-probabilistic invalid-message
    #: detection of Section 5.4 (True for the paper's EB/PC/EBPC; the FIFO
    #: and RL baselines delete only already-expired messages).
    probabilistic_pruning: bool = True

    #: How this strategy's scores move with time, which decides the
    #: :mod:`repro.core.queueing` backend:
    #:
    #: * ``"static"`` — scores never change (FIFO): an exact heap suffices.
    #: * ``"age_monotone"`` — every entry's score shifts by the same
    #:   time-dependent amount (RL: all lifetimes decay at 1 ms/ms), so the
    #:   *ordering* is time-invariant and :meth:`static_key` ranks exactly.
    #: * ``"dynamic"`` — scores move at entry-dependent speeds (EB/PC/EBPC);
    #:   the queue uses the bound from :meth:`score_and_bound` when the
    #:   strategy provides one, and falls back to a full rescan otherwise.
    score_kind: str = "dynamic"

    @abstractmethod
    def score(self, entry: QueueEntry, ctx: SchedulingContext) -> float:
        """Higher is sent first."""

    def static_key(self, entry: QueueEntry) -> float:
        """Time-invariant ranking key (``static``/``age_monotone`` only).

        Contract: for any two entries and any scheduling context,
        ``static_key(a) > static_key(b)`` implies ``score(a, ctx) >=
        score(b, ctx)`` up to float summation rounding.  The keyed heap
        re-scores candidates whose keys sit within a small slack window of
        the top key, so sub-ulp disagreements between key order and score
        order cannot change the selection.
        """
        raise NotImplementedError(f"{self.name}: score_kind={self.score_kind!r} has no static key")

    def score_and_bound(
        self, entry: QueueEntry, ctx: SchedulingContext
    ) -> tuple[float, float]:
        """Current score plus an upper bound on all *future* scores.

        The bound must satisfy ``score(entry, ctx') <= bound`` for every
        later context ``ctx'`` (``ctx'.now >= ctx.now``, same queue).  The
        default advertises no bound (``inf``), which makes the scheduled
        queue re-examine the entry at every selection — the full-rescan
        fallback.
        """
        return self.score(entry, ctx), math.inf

    def select(self, entries: list[QueueEntry], ctx: SchedulingContext) -> int:
        """Index of the entry to send: max score, FIFO tie-break."""
        if not entries:
            raise ValueError("cannot select from an empty queue")
        best_idx = 0
        best_key = (-math.inf, math.inf)
        for i, entry in enumerate(entries):
            key = (self.score(entry, ctx), -entry.seq)
            if key > best_key:
                best_key = key
                best_idx = i
        return best_idx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class FifoStrategy(Strategy):
    """First in, first out — the classic network baseline."""

    name = "fifo"
    probabilistic_pruning = False
    score_kind = "static"

    def score(self, entry: QueueEntry, ctx: SchedulingContext) -> float:
        return -float(entry.seq)

    def static_key(self, entry: QueueEntry) -> float:
        return -float(entry.seq)


class RemainingLifetimeStrategy(Strategy):
    """Minimum remaining lifetime first (EDF-style baseline).

    With several interested subscriptions a message has several remaining
    lifetimes; per Section 6.1 the *average* is used by default.  The
    ``aggregation="min"`` variant (classic EDF: most urgent pair decides)
    exists for the ablation bench.  Unbounded pairs (no deadline on either
    side) are excluded; an entry with no bounded pair at all scores lowest
    (it is never urgent).
    """

    name = "rl"
    probabilistic_pruning = False
    score_kind = "age_monotone"

    def __init__(self, aggregation: str = "average") -> None:
        if aggregation not in ("average", "min"):
            raise ValueError(f"aggregation must be 'average' or 'min', got {aggregation!r}")
        self.aggregation = aggregation
        if aggregation != "average":
            self.name = f"rl({aggregation})"

    def score(self, entry: QueueEntry, ctx: SchedulingContext) -> float:
        total = 0.0
        smallest = math.inf
        bounded = 0
        for row in entry.rows:
            adl = effective_deadline(row, entry.message)
            if math.isinf(adl):
                continue
            lifetime = adl - entry.message.hdl(ctx.now)
            total += lifetime
            smallest = min(smallest, lifetime)
            bounded += 1
        if bounded == 0:
            return -math.inf
        if self.aggregation == "min":
            return -smallest
        return -(total / bounded)  # smallest average lifetime => highest score

    def static_key(self, entry: QueueEntry) -> float:
        # Every bounded pair's remaining lifetime decays at exactly 1 ms
        # per ms, so scores of two entries keep their relative order at all
        # times; ranking by the (negated) absolute expiry instant
        # ``publish_time + adl`` is equivalent to ranking by score.
        total = 0.0
        smallest = math.inf
        bounded = 0
        for row in entry.rows:
            adl = effective_deadline(row, entry.message)
            if math.isinf(adl):
                continue
            expiry = entry.message.publish_time + adl
            total += expiry
            smallest = min(smallest, expiry)
            bounded += 1
        if bounded == 0:
            return -math.inf
        if self.aggregation == "min":
            return -smallest
        return -(total / bounded)


class EbStrategy(Strategy):
    """Maximum Expected Benefit first (Section 5.1).

    EB shrinks as a message ages (``hdl`` grows, success probabilities
    fall), so the EB evaluated *now* upper-bounds every future score —
    which is what lets the scheduled queue skip rescoring entries whose
    last-known EB cannot beat the current best (see
    :meth:`Strategy.score_and_bound`).
    """

    name = "eb"

    def score(self, entry: QueueEntry, ctx: SchedulingContext) -> float:
        return expected_benefit_vec(
            entry.arrays, entry.message, ctx.now, ctx.processing_delay_ms
        )

    def score_and_bound(
        self, entry: QueueEntry, ctx: SchedulingContext
    ) -> tuple[float, float]:
        eb = self.score(entry, ctx)
        return eb, eb


class PcStrategy(Strategy):
    """Maximum Postponing Cost first (Section 5.2).

    PC itself is not monotone in time (it rises while an entry approaches
    its decision ramp, then collapses), but ``PC = EB − EB′ ≤ EB`` because
    the postponed benefit ``EB′`` is non-negative — so the current EB still
    bounds every future PC score.
    """

    name = "pc"

    def score(self, entry: QueueEntry, ctx: SchedulingContext) -> float:
        return postponing_cost_vec(
            entry.arrays, entry.message, ctx.now, ctx.processing_delay_ms, ctx.ft_ms
        )

    def score_and_bound(
        self, entry: QueueEntry, ctx: SchedulingContext
    ) -> tuple[float, float]:
        eb, eb_postponed = eb_pair_vec(
            entry.arrays, entry.message, ctx.now, ctx.processing_delay_ms, ctx.ft_ms
        )
        return eb - eb_postponed, eb


class EbpcStrategy(Strategy):
    """Maximum ``r·EB + (1−r)·PC`` first (Section 5.3).

    A convex combination of EB and PC, both of which are bounded by the
    current EB (see :class:`EbStrategy`/:class:`PcStrategy`), so the
    combination is too.
    """

    name = "ebpc"

    def __init__(self, r: float = 0.5) -> None:
        if not 0.0 <= r <= 1.0:
            raise ValueError(f"r must be in [0, 1], got {r}")
        self.r = r
        self.name = f"ebpc(r={r:g})"

    def score(self, entry: QueueEntry, ctx: SchedulingContext) -> float:
        eb, eb_postponed = eb_pair_vec(
            entry.arrays, entry.message, ctx.now, ctx.processing_delay_ms, ctx.ft_ms
        )
        return ebpc_value(eb, eb - eb_postponed, self.r)

    def score_and_bound(
        self, entry: QueueEntry, ctx: SchedulingContext
    ) -> tuple[float, float]:
        eb, eb_postponed = eb_pair_vec(
            entry.arrays, entry.message, ctx.now, ctx.processing_delay_ms, ctx.ft_ms
        )
        return ebpc_value(eb, eb - eb_postponed, self.r), eb
