"""Queue disciplines: FIFO, RL, EB, PC, EBPC (Sections 5.1–5.3, 6.1).

A strategy ranks the entries of one output queue; the broker sends the
entry with the **highest score** (deterministic FIFO tie-break on the
enqueue sequence number).  Scores may depend on the current time — EB and
PC shrink as a message ages — so they are recomputed at each selection.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.context import SchedulingContext
from repro.core.metrics import (
    ebpc_value,
    expected_benefit_vec,
    postponing_cost_vec,
)
from repro.core.success import effective_deadline
from repro.pubsub.message import Message
from repro.pubsub.subscription import RowArrays, TableRow


@dataclass
class QueueEntry:
    """One message copy waiting in one output queue.

    ``rows`` are the subscriptions reachable through this queue's neighbour
    that the message satisfies (fixed at enqueue time; the evaluation uses
    a static subscription population, as in the paper).  ``arrays`` is the
    vectorised view used by the metric kernels.
    """

    message: Message
    rows: list[TableRow]
    enqueue_time: float
    seq: int
    arrays: RowArrays = field(init=False)

    def __post_init__(self) -> None:
        if not self.rows:
            raise ValueError("a queue entry must target at least one subscription")
        self.arrays = RowArrays.from_rows(self.rows)


class Strategy(ABC):
    """Interface all queue disciplines implement."""

    #: Human-readable name used by the registry and reports.
    name: str = "abstract"

    #: Whether the broker should apply the ε-probabilistic invalid-message
    #: detection of Section 5.4 (True for the paper's EB/PC/EBPC; the FIFO
    #: and RL baselines delete only already-expired messages).
    probabilistic_pruning: bool = True

    @abstractmethod
    def score(self, entry: QueueEntry, ctx: SchedulingContext) -> float:
        """Higher is sent first."""

    def select(self, entries: list[QueueEntry], ctx: SchedulingContext) -> int:
        """Index of the entry to send: max score, FIFO tie-break."""
        if not entries:
            raise ValueError("cannot select from an empty queue")
        best_idx = 0
        best_key = (-math.inf, math.inf)
        for i, entry in enumerate(entries):
            key = (self.score(entry, ctx), -entry.seq)
            if key > best_key:
                best_key = key
                best_idx = i
        return best_idx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class FifoStrategy(Strategy):
    """First in, first out — the classic network baseline."""

    name = "fifo"
    probabilistic_pruning = False

    def score(self, entry: QueueEntry, ctx: SchedulingContext) -> float:
        return -float(entry.seq)


class RemainingLifetimeStrategy(Strategy):
    """Minimum remaining lifetime first (EDF-style baseline).

    With several interested subscriptions a message has several remaining
    lifetimes; per Section 6.1 the *average* is used by default.  The
    ``aggregation="min"`` variant (classic EDF: most urgent pair decides)
    exists for the ablation bench.  Unbounded pairs (no deadline on either
    side) are excluded; an entry with no bounded pair at all scores lowest
    (it is never urgent).
    """

    name = "rl"
    probabilistic_pruning = False

    def __init__(self, aggregation: str = "average") -> None:
        if aggregation not in ("average", "min"):
            raise ValueError(f"aggregation must be 'average' or 'min', got {aggregation!r}")
        self.aggregation = aggregation
        if aggregation != "average":
            self.name = f"rl({aggregation})"

    def score(self, entry: QueueEntry, ctx: SchedulingContext) -> float:
        total = 0.0
        smallest = math.inf
        bounded = 0
        for row in entry.rows:
            adl = effective_deadline(row, entry.message)
            if math.isinf(adl):
                continue
            lifetime = adl - entry.message.hdl(ctx.now)
            total += lifetime
            smallest = min(smallest, lifetime)
            bounded += 1
        if bounded == 0:
            return -math.inf
        if self.aggregation == "min":
            return -smallest
        return -(total / bounded)  # smallest average lifetime => highest score


class EbStrategy(Strategy):
    """Maximum Expected Benefit first (Section 5.1)."""

    name = "eb"

    def score(self, entry: QueueEntry, ctx: SchedulingContext) -> float:
        return expected_benefit_vec(
            entry.arrays, entry.message, ctx.now, ctx.processing_delay_ms
        )


class PcStrategy(Strategy):
    """Maximum Postponing Cost first (Section 5.2)."""

    name = "pc"

    def score(self, entry: QueueEntry, ctx: SchedulingContext) -> float:
        return postponing_cost_vec(
            entry.arrays, entry.message, ctx.now, ctx.processing_delay_ms, ctx.ft_ms
        )


class EbpcStrategy(Strategy):
    """Maximum ``r·EB + (1−r)·PC`` first (Section 5.3)."""

    name = "ebpc"

    def __init__(self, r: float = 0.5) -> None:
        if not 0.0 <= r <= 1.0:
            raise ValueError(f"r must be in [0, 1], got {r}")
        self.r = r
        self.name = f"ebpc(r={r:g})"

    def score(self, entry: QueueEntry, ctx: SchedulingContext) -> float:
        eb = expected_benefit_vec(
            entry.arrays, entry.message, ctx.now, ctx.processing_delay_ms
        )
        eb_postponed = expected_benefit_vec(
            entry.arrays, entry.message, ctx.now, ctx.processing_delay_ms, ctx.ft_ms
        )
        return ebpc_value(eb, eb - eb_postponed, self.r)
