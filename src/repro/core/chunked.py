"""Chunked columnar storage with optional on-disk spill.

The columnar spine (PR 2/3) made append and reduction fast, but every
row of every run still lived in RAM until process exit — fine at 20k
subscribers, fatal at the roadmap's "millions of users" tier.  This
module decomposes a column set into **fixed-size immutable chunks**:

* the *active* chunk is a set of fixed-capacity
  :class:`~repro.core.growable.GrowableArray` columns (one broadcast or
  slice write per batch, never reallocating);
* a full active chunk is **sealed** — its columns are detached
  (zero-copy, marked read-only) and either kept in memory or, with
  spill enabled, written to a numbered ``.npz`` file in a private temp
  ring and dropped from RAM;
* readers consume :meth:`ChunkedColumnStore.iter_chunks`, a streaming
  pass that materialises **one chunk at a time** (loading only the
  requested columns of spilled chunks), so any associative reduction —
  partial bincounts, ``np.add.at`` into carried accumulators, sorted
  key merges — runs in O(chunk) memory over an O(run) log.

Chunk boundaries never reorder rows: concatenating the chunks of a
store reproduces the exact append sequence, which is what makes the
streaming reductions in :mod:`repro.analysis` decision- and
byte-compatible with the old whole-array gathers.
"""

from __future__ import annotations

import shutil
import tempfile
import time
import weakref
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.core.growable import GrowableArray

#: Default rows per chunk: 64k rows x 5 delivery-log columns x 8 bytes is
#: a ~2.5 MB working set — big enough to amortise seal overhead, small
#: enough that the active chunk is cache-friendly.
DEFAULT_CHUNK_ROWS = 65_536


# ---------------------------------------------------------------------- #
# Hardened chunk I/O.
# ---------------------------------------------------------------------- #
class SpillError(RuntimeError):
    """A spill-ring chunk could not be written or read back.

    Carries the offending ``path`` and ``chunk_id`` so a failed marathon
    run points straight at the bad file (ENOSPC, truncated/corrupt
    ``.npz``) instead of surfacing a raw numpy/zipfile traceback from
    deep inside a reduction.
    """

    def __init__(self, message: str, *, path: Path | str, chunk_id: int) -> None:
        super().__init__(message)
        self.path = Path(path)
        self.chunk_id = chunk_id


#: Save/load indirections: tests inject failing-filesystem shims here.
_SAVEZ = np.savez
_LOAD = np.load
_COPY = shutil.copy2

#: Bounded retry for transient I/O (EINTR, NFS hiccups).  Attempt ``k``
#: sleeps ``_SPILL_BACKOFF_S * 2**k`` before retrying; persistent errors
#: (ENOSPC never heals in 0.15 s, but the caller gets a typed error
#: naming the file either way) surface as :class:`SpillError`.
_SPILL_ATTEMPTS = 3
_SPILL_BACKOFF_S = 0.05

#: Errors that mean "this chunk is corrupt", not "the fs is flaky" —
#: retrying cannot help, so they convert to SpillError immediately.
_CORRUPT_ERRORS = (ValueError, KeyError, EOFError, zipfile.BadZipFile)


def _chunk_id_of(path: Path) -> int:
    """Chunk ordinal encoded in the ring file name (-1 if foreign)."""
    try:
        return int(Path(path).stem.rsplit("-", 1)[-1])
    except ValueError:
        return -1


def _retrying(op: str, path: Path, fn: Callable[[], Any]) -> Any:
    """Run ``fn`` with bounded retry-with-backoff on OSError; convert
    corrupt-chunk errors immediately and exhausted retries finally into
    :class:`SpillError`."""
    last: OSError | None = None
    for attempt in range(_SPILL_ATTEMPTS):
        try:
            return fn()
        except _CORRUPT_ERRORS as exc:
            raise SpillError(
                f"corrupt spill chunk ({op} {path}): {exc!r}",
                path=path, chunk_id=_chunk_id_of(path),
            ) from exc
        except OSError as exc:
            last = exc
            if attempt + 1 < _SPILL_ATTEMPTS:
                time.sleep(_SPILL_BACKOFF_S * (2 ** attempt))
    raise SpillError(
        f"failed to {op} spill chunk {path} after {_SPILL_ATTEMPTS} "
        f"attempts: {last!r}",
        path=path, chunk_id=_chunk_id_of(path),
    ) from last


def _write_chunk(path: Path, arrays: dict[str, np.ndarray]) -> None:
    _retrying("write", path, lambda: _SAVEZ(path, **arrays))


def _read_chunk(path: Path, names: Sequence[str]) -> tuple[np.ndarray, ...]:
    def _load() -> tuple[np.ndarray, ...]:
        with _LOAD(path, allow_pickle=False) as zf:
            # npz members load lazily per key: a reduction that needs two
            # of five columns reads only those two from disk.
            return tuple(zf[n] for n in names)

    return _retrying("read", path, _load)


def _copy_chunk(src: Path, dst: Path) -> None:
    _retrying("copy", src, lambda: _COPY(src, dst))


# ---------------------------------------------------------------------- #
# Spill-file transfer (checkpoint save/restore).
# ---------------------------------------------------------------------- #
class SpillTransfer:
    """File-level transfer channel for spilled chunks during (un)pickling.

    Pickling a spilling store without a transfer context inlines every
    spilled chunk into the byte stream — correct, but it re-buys the RAM
    the spill ring exists to avoid.  Inside a :func:`spill_transfer`
    context the store instead *copies* each spilled ``.npz`` file into
    ``root`` (namespaced per store object, so the delivery and
    publication logs never collide) and pickles a relative reference.
    Unpickling under a context rooted at the same directory copies the
    files back into a fresh private ring.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self._keys: dict[int, str] = {}

    def _store_key(self, store: "ChunkedColumnStore") -> str:
        key = self._keys.get(id(store))
        if key is None:
            key = f"store-{len(self._keys):03d}"
            self._keys[id(store)] = key
        return key

    def export(self, store: "ChunkedColumnStore", path: Path) -> str:
        """Copy a spilled chunk file under ``root``; return its relative
        reference string."""
        rel = f"{self._store_key(store)}/{path.name}"
        dst = self.root / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        _copy_chunk(path, dst)
        return rel

    def resolve(self, rel: str) -> Path:
        return self.root / rel


_SPILL_TRANSFER: list[SpillTransfer] = []


@contextmanager
def spill_transfer(root: Path | str) -> Iterator[SpillTransfer]:
    """Activate a :class:`SpillTransfer` rooted at ``root`` for the
    duration of a pickle/unpickle of spilling stores."""
    ctx = SpillTransfer(root)
    _SPILL_TRANSFER.append(ctx)
    try:
        yield ctx
    finally:
        _SPILL_TRANSFER.pop()


def sorted_contains(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean membership of ``needles`` in a **sorted** ``haystack``.

    The searchsorted-and-clamp idiom every chunk-streaming reduction
    needs (cross-chunk dedup state probes, wanted-id filters); shared
    here so the clamping subtlety lives in one place.  ``haystack`` must
    be ascending (an empty haystack contains nothing); ``needles`` may
    be in any order.
    """
    if haystack.shape[0] == 0:
        return np.zeros(needles.shape[0], dtype=bool)
    pos = np.minimum(np.searchsorted(haystack, needles), haystack.shape[0] - 1)
    return haystack[pos] == needles


def grouped_runs(ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stable group-by over an id array: ``(order, sorted_ids, starts,
    stops)``.

    ``order`` is a stable argsort (ties keep input order — for the
    chunk-streaming reductions that means arrival order within each
    group); group ``g`` covers ``order[starts[g]:stops[g]]`` and its id
    is ``sorted_ids[starts[g]]``.  Shared by the per-chunk group-bys in
    :mod:`repro.analysis` so the run-boundary arithmetic lives once.
    """
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    if sorted_ids.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return order, sorted_ids, empty, empty  # no phantom zero-length group
    bounds = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), bounds))
    stops = np.append(bounds, sorted_ids.shape[0])
    return order, sorted_ids, starts, stops


class _SealedChunk:
    """One immutable chunk: column arrays in memory or an ``.npz`` path."""

    __slots__ = ("rows", "arrays", "path")

    def __init__(self, rows: int, arrays: dict[str, np.ndarray] | None, path: Path | None) -> None:
        self.rows = rows
        self.arrays = arrays
        self.path = path

    def load(self, names: Sequence[str]) -> tuple[np.ndarray, ...]:
        if self.arrays is not None:
            return tuple(self.arrays[n] for n in names)
        return _read_chunk(self.path, names)  # type: ignore[arg-type]


class ChunkedColumnStore:
    """Append-only named columns stored as fixed-size immutable chunks.

    ``schema`` is a sequence of ``(name, dtype)`` pairs.  With
    ``spill=False`` (the default) sealed chunks stay in memory and the
    store behaves like the old growable columns, just pre-segmented;
    with ``spill=True`` sealed chunks are written to a process-private
    temp directory (``<prefix>-XXXX/chunk-NNNNNN.npz``) that is removed
    when the store is garbage-collected or :meth:`close` is called.
    """

    __slots__ = (
        "_names", "_dtypes", "_chunk_rows", "_spill", "_spill_prefix",
        "_spill_dir", "_active", "_sealed", "_rows_sealed", "_finalizer",
        "__weakref__",
    )

    def __init__(
        self,
        schema: Sequence[tuple[str, np.dtype]],
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        spill: bool = False,
        spill_prefix: str = "repro-chunks",
    ) -> None:
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        if not schema:
            raise ValueError("schema must name at least one column")
        self._names = tuple(name for name, _ in schema)
        self._dtypes = tuple(np.dtype(dt) for _, dt in schema)
        self._chunk_rows = chunk_rows
        self._spill = spill
        self._spill_prefix = spill_prefix
        self._spill_dir: Path | None = None
        self._finalizer = None
        if spill:
            tmp = tempfile.mkdtemp(prefix=f"{spill_prefix}-")
            self._spill_dir = Path(tmp)
            self._finalizer = weakref.finalize(self, _remove_tree, tmp)
        self._active = self._fresh_active()
        self._sealed: list[_SealedChunk] = []
        self._rows_sealed = 0

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @property
    def chunk_rows(self) -> int:
        return self._chunk_rows

    @property
    def sealed_chunks(self) -> int:
        return len(self._sealed)

    @property
    def spilled_chunks(self) -> int:
        return sum(1 for c in self._sealed if c.path is not None)

    @property
    def spills(self) -> bool:
        return self._spill

    def __len__(self) -> int:
        return self._rows_sealed + len(self._active[0])

    # ------------------------------------------------------------------ #
    # Appending.
    # ------------------------------------------------------------------ #
    def _fresh_active(self) -> tuple[GrowableArray, ...]:
        return tuple(
            GrowableArray(dt, capacity=self._chunk_rows) for dt in self._dtypes
        )

    def _seal_active(self) -> None:
        arrays = {n: g.detach() for n, g in zip(self._names, self._active)}
        rows = next(iter(arrays.values())).shape[0]
        if self._spill_dir is not None:
            if not self._spill_dir.exists():
                # Recreate the ring after close() (or external cleanup):
                # the store stays append-usable for its whole lifetime.
                self._spill_dir.mkdir(parents=True, exist_ok=True)
                self._finalizer = weakref.finalize(
                    self, _remove_tree, str(self._spill_dir)
                )
            path = self._spill_dir / f"chunk-{len(self._sealed):06d}.npz"
            _write_chunk(path, arrays)
            self._sealed.append(_SealedChunk(rows, None, path))
        else:
            self._sealed.append(_SealedChunk(rows, arrays, None))
        self._rows_sealed += rows
        self._active = self._fresh_active()

    def append_row(self, *values: Any) -> None:
        """Append one row (scalar per column, schema order)."""
        for g, v in zip(self._active, values):
            g.append(v)
        if len(self._active[0]) >= self._chunk_rows:
            self._seal_active()

    def append_batch(self, count: int, *columns: Any) -> None:
        """Append ``count`` rows; each column is a length-``count`` array
        or a scalar (broadcast with one slice-fill per chunk segment).

        Batches larger than the active chunk's remaining capacity are
        split at chunk boundaries, preserving row order exactly.
        """
        if count <= 0:
            return
        offset = 0
        while offset < count:
            fill = len(self._active[0])
            take = min(self._chunk_rows - fill, count - offset)
            for g, col in zip(self._active, columns):
                if isinstance(col, np.ndarray):
                    g.extend(col[offset : offset + take])
                else:
                    g.extend_scalar(col, take)
            offset += take
            if len(self._active[0]) >= self._chunk_rows:
                self._seal_active()

    # ------------------------------------------------------------------ #
    # Reading.
    # ------------------------------------------------------------------ #
    def iter_chunks(
        self, names: Sequence[str] | None = None
    ) -> Iterator[tuple[np.ndarray, ...]]:
        """Stream the store's chunks in append order.

        Yields one tuple of column arrays (in ``names`` order; all
        columns by default) per sealed chunk, then the live prefix of
        the active chunk.  Sealed arrays are immutable; the final active
        tuple holds live views — consume each chunk before appending
        again, and never mutate what is yielded.
        """
        cols = self._names if names is None else tuple(names)
        for chunk in self._sealed:
            yield chunk.load(cols)
        if len(self._active[0]):
            idx = {n: i for i, n in enumerate(self._names)}
            yield tuple(self._active[idx[n]].view() for n in cols)

    def gather(self, names: Sequence[str] | None = None) -> tuple[np.ndarray, ...]:
        """Concatenate all chunks into whole-column copies.

        The compatibility escape hatch: safe to hold (always a copy),
        but materialises the full log — streaming reductions should use
        :meth:`iter_chunks` instead.
        """
        cols = self._names if names is None else tuple(names)
        parts: list[tuple[np.ndarray, ...]] = list(self.iter_chunks(cols))
        if not parts:
            idx = {n: i for i, n in enumerate(self._names)}
            return tuple(np.empty(0, dtype=self._dtypes[idx[n]]) for n in cols)
        return tuple(
            np.concatenate([p[i] for p in parts]) if len(parts) > 1 else parts[0][i].copy()
            for i in range(len(cols))
        )

    # ------------------------------------------------------------------ #
    # Serialization.
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Snapshot the store.  In-memory chunks and the active prefix
        pickle by value; spilled chunks export through the ambient
        :func:`spill_transfer` context as file references, or — without
        one — inline into the stream (correct, but O(log) memory)."""
        transfer = _SPILL_TRANSFER[-1] if _SPILL_TRANSFER else None
        sealed: list[tuple[str, int, object]] = []
        for chunk in self._sealed:
            if chunk.path is None:
                sealed.append(("mem", chunk.rows, chunk.arrays))
            elif transfer is not None:
                sealed.append(("ref", chunk.rows, transfer.export(self, chunk.path)))
            else:
                arrays = dict(zip(self._names, chunk.load(self._names)))
                sealed.append(("mem", chunk.rows, arrays))
        return {
            "names": self._names,
            "dtypes": self._dtypes,
            "chunk_rows": self._chunk_rows,
            "spill": self._spill,
            "spill_prefix": self._spill_prefix,
            "rows_sealed": self._rows_sealed,
            "active": self._active,
            "sealed": sealed,
        }

    def __setstate__(self, state: dict) -> None:
        self._names = state["names"]
        self._dtypes = state["dtypes"]
        self._chunk_rows = state["chunk_rows"]
        self._spill = state["spill"]
        self._spill_prefix = state["spill_prefix"]
        self._rows_sealed = state["rows_sealed"]
        self._active = state["active"]
        self._spill_dir = None
        self._finalizer = None
        if self._spill:
            # A fresh private ring: restored stores never write into (or
            # depend on the continued existence of) the checkpoint dir.
            tmp = tempfile.mkdtemp(prefix=f"{self._spill_prefix}-")
            self._spill_dir = Path(tmp)
            self._finalizer = weakref.finalize(self, _remove_tree, tmp)
        transfer = _SPILL_TRANSFER[-1] if _SPILL_TRANSFER else None
        sealed: list[_SealedChunk] = []
        for kind, rows, payload in state["sealed"]:
            path = (
                None if self._spill_dir is None
                else self._spill_dir / f"chunk-{len(sealed):06d}.npz"
            )
            if kind == "mem":
                if path is not None:
                    # Re-spill inline chunks so the restored store keeps
                    # the bounded-memory property it was built with.
                    _write_chunk(path, payload)
                    sealed.append(_SealedChunk(rows, None, path))
                else:
                    sealed.append(_SealedChunk(rows, payload, None))
            elif kind == "ref":
                if transfer is None or path is None:
                    raise SpillError(
                        f"cannot restore spilled chunk reference {payload!r} "
                        "outside a spill_transfer() context",
                        path=str(payload), chunk_id=len(sealed),
                    )
                _copy_chunk(transfer.resolve(payload), path)
                sealed.append(_SealedChunk(rows, None, path))
            else:  # pragma: no cover - forward-compat guard
                raise SpillError(
                    f"unknown sealed-chunk encoding {kind!r}",
                    path="", chunk_id=len(sealed),
                )
        self._sealed = sealed

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop sealed chunks and remove the spill ring (idempotent)."""
        self._sealed.clear()
        self._rows_sealed = 0
        self._active = self._fresh_active()
        if self._finalizer is not None:
            self._finalizer()


def _remove_tree(path: str) -> None:
    """Best-effort recursive removal of the spill ring directory."""
    import shutil

    shutil.rmtree(path, ignore_errors=True)
