"""Chunked columnar storage with optional on-disk spill.

The columnar spine (PR 2/3) made append and reduction fast, but every
row of every run still lived in RAM until process exit — fine at 20k
subscribers, fatal at the roadmap's "millions of users" tier.  This
module decomposes a column set into **fixed-size immutable chunks**:

* the *active* chunk is a set of fixed-capacity
  :class:`~repro.core.growable.GrowableArray` columns (one broadcast or
  slice write per batch, never reallocating);
* a full active chunk is **sealed** — its columns are detached
  (zero-copy, marked read-only) and either kept in memory or, with
  spill enabled, written to a numbered ``.npz`` file in a private temp
  ring and dropped from RAM;
* readers consume :meth:`ChunkedColumnStore.iter_chunks`, a streaming
  pass that materialises **one chunk at a time** (loading only the
  requested columns of spilled chunks), so any associative reduction —
  partial bincounts, ``np.add.at`` into carried accumulators, sorted
  key merges — runs in O(chunk) memory over an O(run) log.

Chunk boundaries never reorder rows: concatenating the chunks of a
store reproduces the exact append sequence, which is what makes the
streaming reductions in :mod:`repro.analysis` decision- and
byte-compatible with the old whole-array gathers.
"""

from __future__ import annotations

import tempfile
import weakref
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.core.growable import GrowableArray

#: Default rows per chunk: 64k rows x 5 delivery-log columns x 8 bytes is
#: a ~2.5 MB working set — big enough to amortise seal overhead, small
#: enough that the active chunk is cache-friendly.
DEFAULT_CHUNK_ROWS = 65_536


def sorted_contains(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean membership of ``needles`` in a **sorted** ``haystack``.

    The searchsorted-and-clamp idiom every chunk-streaming reduction
    needs (cross-chunk dedup state probes, wanted-id filters); shared
    here so the clamping subtlety lives in one place.  ``haystack`` must
    be ascending (an empty haystack contains nothing); ``needles`` may
    be in any order.
    """
    if haystack.shape[0] == 0:
        return np.zeros(needles.shape[0], dtype=bool)
    pos = np.minimum(np.searchsorted(haystack, needles), haystack.shape[0] - 1)
    return haystack[pos] == needles


def grouped_runs(ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stable group-by over an id array: ``(order, sorted_ids, starts,
    stops)``.

    ``order`` is a stable argsort (ties keep input order — for the
    chunk-streaming reductions that means arrival order within each
    group); group ``g`` covers ``order[starts[g]:stops[g]]`` and its id
    is ``sorted_ids[starts[g]]``.  Shared by the per-chunk group-bys in
    :mod:`repro.analysis` so the run-boundary arithmetic lives once.
    """
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    if sorted_ids.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return order, sorted_ids, empty, empty  # no phantom zero-length group
    bounds = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), bounds))
    stops = np.append(bounds, sorted_ids.shape[0])
    return order, sorted_ids, starts, stops


class _SealedChunk:
    """One immutable chunk: column arrays in memory or an ``.npz`` path."""

    __slots__ = ("rows", "arrays", "path")

    def __init__(self, rows: int, arrays: dict[str, np.ndarray] | None, path: Path | None) -> None:
        self.rows = rows
        self.arrays = arrays
        self.path = path

    def load(self, names: Sequence[str]) -> tuple[np.ndarray, ...]:
        if self.arrays is not None:
            return tuple(self.arrays[n] for n in names)
        with np.load(self.path, allow_pickle=False) as zf:  # type: ignore[arg-type]
            # npz members load lazily per key: a reduction that needs two
            # of five columns reads only those two from disk.
            return tuple(zf[n] for n in names)


class ChunkedColumnStore:
    """Append-only named columns stored as fixed-size immutable chunks.

    ``schema`` is a sequence of ``(name, dtype)`` pairs.  With
    ``spill=False`` (the default) sealed chunks stay in memory and the
    store behaves like the old growable columns, just pre-segmented;
    with ``spill=True`` sealed chunks are written to a process-private
    temp directory (``<prefix>-XXXX/chunk-NNNNNN.npz``) that is removed
    when the store is garbage-collected or :meth:`close` is called.
    """

    __slots__ = (
        "_names", "_dtypes", "_chunk_rows", "_spill", "_spill_dir",
        "_active", "_sealed", "_rows_sealed", "_finalizer", "__weakref__",
    )

    def __init__(
        self,
        schema: Sequence[tuple[str, np.dtype]],
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        spill: bool = False,
        spill_prefix: str = "repro-chunks",
    ) -> None:
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        if not schema:
            raise ValueError("schema must name at least one column")
        self._names = tuple(name for name, _ in schema)
        self._dtypes = tuple(np.dtype(dt) for _, dt in schema)
        self._chunk_rows = chunk_rows
        self._spill = spill
        self._spill_dir: Path | None = None
        self._finalizer = None
        if spill:
            tmp = tempfile.mkdtemp(prefix=f"{spill_prefix}-")
            self._spill_dir = Path(tmp)
            self._finalizer = weakref.finalize(self, _remove_tree, tmp)
        self._active = self._fresh_active()
        self._sealed: list[_SealedChunk] = []
        self._rows_sealed = 0

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @property
    def chunk_rows(self) -> int:
        return self._chunk_rows

    @property
    def sealed_chunks(self) -> int:
        return len(self._sealed)

    @property
    def spilled_chunks(self) -> int:
        return sum(1 for c in self._sealed if c.path is not None)

    @property
    def spills(self) -> bool:
        return self._spill

    def __len__(self) -> int:
        return self._rows_sealed + len(self._active[0])

    # ------------------------------------------------------------------ #
    # Appending.
    # ------------------------------------------------------------------ #
    def _fresh_active(self) -> tuple[GrowableArray, ...]:
        return tuple(
            GrowableArray(dt, capacity=self._chunk_rows) for dt in self._dtypes
        )

    def _seal_active(self) -> None:
        arrays = {n: g.detach() for n, g in zip(self._names, self._active)}
        rows = next(iter(arrays.values())).shape[0]
        if self._spill_dir is not None:
            if not self._spill_dir.exists():
                # Recreate the ring after close() (or external cleanup):
                # the store stays append-usable for its whole lifetime.
                self._spill_dir.mkdir(parents=True, exist_ok=True)
                self._finalizer = weakref.finalize(
                    self, _remove_tree, str(self._spill_dir)
                )
            path = self._spill_dir / f"chunk-{len(self._sealed):06d}.npz"
            np.savez(path, **arrays)
            self._sealed.append(_SealedChunk(rows, None, path))
        else:
            self._sealed.append(_SealedChunk(rows, arrays, None))
        self._rows_sealed += rows
        self._active = self._fresh_active()

    def append_row(self, *values) -> None:
        """Append one row (scalar per column, schema order)."""
        for g, v in zip(self._active, values):
            g.append(v)
        if len(self._active[0]) >= self._chunk_rows:
            self._seal_active()

    def append_batch(self, count: int, *columns) -> None:
        """Append ``count`` rows; each column is a length-``count`` array
        or a scalar (broadcast with one slice-fill per chunk segment).

        Batches larger than the active chunk's remaining capacity are
        split at chunk boundaries, preserving row order exactly.
        """
        if count <= 0:
            return
        offset = 0
        while offset < count:
            fill = len(self._active[0])
            take = min(self._chunk_rows - fill, count - offset)
            for g, col in zip(self._active, columns):
                if isinstance(col, np.ndarray):
                    g.extend(col[offset : offset + take])
                else:
                    g.extend_scalar(col, take)
            offset += take
            if len(self._active[0]) >= self._chunk_rows:
                self._seal_active()

    # ------------------------------------------------------------------ #
    # Reading.
    # ------------------------------------------------------------------ #
    def iter_chunks(
        self, names: Sequence[str] | None = None
    ) -> Iterator[tuple[np.ndarray, ...]]:
        """Stream the store's chunks in append order.

        Yields one tuple of column arrays (in ``names`` order; all
        columns by default) per sealed chunk, then the live prefix of
        the active chunk.  Sealed arrays are immutable; the final active
        tuple holds live views — consume each chunk before appending
        again, and never mutate what is yielded.
        """
        cols = self._names if names is None else tuple(names)
        for chunk in self._sealed:
            yield chunk.load(cols)
        if len(self._active[0]):
            idx = {n: i for i, n in enumerate(self._names)}
            yield tuple(self._active[idx[n]].view() for n in cols)

    def gather(self, names: Sequence[str] | None = None) -> tuple[np.ndarray, ...]:
        """Concatenate all chunks into whole-column copies.

        The compatibility escape hatch: safe to hold (always a copy),
        but materialises the full log — streaming reductions should use
        :meth:`iter_chunks` instead.
        """
        cols = self._names if names is None else tuple(names)
        parts: list[tuple[np.ndarray, ...]] = list(self.iter_chunks(cols))
        if not parts:
            idx = {n: i for i, n in enumerate(self._names)}
            return tuple(np.empty(0, dtype=self._dtypes[idx[n]]) for n in cols)
        return tuple(
            np.concatenate([p[i] for p in parts]) if len(parts) > 1 else parts[0][i].copy()
            for i in range(len(cols))
        )

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop sealed chunks and remove the spill ring (idempotent)."""
        self._sealed.clear()
        self._rows_sealed = 0
        self._active = self._fresh_active()
        if self._finalizer is not None:
            self._finalizer()


def _remove_tree(path: str) -> None:
    """Best-effort recursive removal of the spill ring directory."""
    import shutil

    shutil.rmtree(path, ignore_errors=True)
