"""The paper's primary contribution: delay-aware message scheduling.

Section 5 of Wang et al. (ICPP 2006), implemented exactly:

* :mod:`~repro.core.success` — ``hdl`` / ``fdl`` / ``success(s, m)``
  (Eqs. 4–5), scalar reference implementations.
* :mod:`~repro.core.metrics` — Expected Benefit (Eq. 3), Postponing Cost
  (Eqs. 6–9) and EBPC (Eq. 10), in scalar and vectorised (numpy) forms.
* :mod:`~repro.core.strategies` — the five queue disciplines behind one
  interface: FIFO, minimum-Remaining-Lifetime (RL), maximum-EB,
  maximum-PC, maximum-EBPC(r).
* :mod:`~repro.core.pruning` — invalid-message detection (Eq. 11):
  ε-hopeless entries are deleted; baselines use hard expiry only.
* :mod:`~repro.core.registry` — name-based strategy construction
  (``make_strategy("ebpc", r=0.6)``).
"""

from repro.core.context import SchedulingContext
from repro.core.metrics import (
    ebpc_value,
    expected_benefit,
    expected_benefit_vec,
    postponing_cost,
    postponing_cost_vec,
)
from repro.core.pruning import PruningPolicy, entry_is_hopeless
from repro.core.registry import STRATEGY_NAMES, make_strategy
from repro.core.strategies import (
    EbpcStrategy,
    EbStrategy,
    FifoStrategy,
    PcStrategy,
    QueueEntry,
    RemainingLifetimeStrategy,
    Strategy,
)
from repro.core.success import effective_deadline, fdl_distribution, success_probability

__all__ = [
    "SchedulingContext",
    "success_probability",
    "fdl_distribution",
    "effective_deadline",
    "expected_benefit",
    "expected_benefit_vec",
    "postponing_cost",
    "postponing_cost_vec",
    "ebpc_value",
    "Strategy",
    "QueueEntry",
    "FifoStrategy",
    "RemainingLifetimeStrategy",
    "EbStrategy",
    "PcStrategy",
    "EbpcStrategy",
    "PruningPolicy",
    "entry_is_hopeless",
    "make_strategy",
    "STRATEGY_NAMES",
]
