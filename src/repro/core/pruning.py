"""Invalid-message detection (Section 5.4, Eq. 11).

A queued copy is deleted when every subscription it still serves is
hopeless: ``∀ i: success(s_i, m) < ε`` with ε small (the paper uses
0.05 % = 5·10⁻⁴).  Because an expired pair has success ≈ 0 < ε, the
ε-rule subsumes plain expiry; the FIFO/RL baselines apply only the plain
expiry rule (deleting already-dead messages is standard practice and is
what keeps their traffic finite), which :class:`PruningPolicy` encodes.
"""

from __future__ import annotations

import enum
import math

from repro.core.metrics import max_success_vec
from repro.core.strategies import QueueEntry
from repro.core.success import effective_deadline

#: The paper's ε (0.05 %).
DEFAULT_EPSILON = 5e-4


class PruningPolicy(enum.Enum):
    """Which invalid-message rule an output queue applies."""

    NONE = "none"  # never delete (ablation only; traffic can explode)
    EXPIRED = "expired"  # delete when every deadline has already passed
    PROBABILISTIC = "probabilistic"  # Eq. 11: delete when hopeless (< ε)

    @staticmethod
    def for_strategy(probabilistic_pruning: bool) -> "PruningPolicy":
        return (
            PruningPolicy.PROBABILISTIC
            if probabilistic_pruning
            else PruningPolicy.EXPIRED
        )


def entry_is_expired(entry: QueueEntry, now: float) -> bool:
    """True iff every (subscription, message) pair's deadline has passed."""
    for row in entry.rows:
        adl = effective_deadline(row, entry.message)
        if entry.message.hdl(now) <= adl:
            return False
    return True


def entry_is_hopeless(
    entry: QueueEntry,
    now: float,
    processing_delay_ms: float,
    epsilon: float = DEFAULT_EPSILON,
) -> bool:
    """Eq. 11: every remaining subscription has success < ε."""
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return max_success_vec(entry.arrays, entry.message, now, processing_delay_ms) < epsilon


def should_prune(
    entry: QueueEntry,
    now: float,
    processing_delay_ms: float,
    policy: PruningPolicy,
    epsilon: float = DEFAULT_EPSILON,
) -> bool:
    """Apply the queue's pruning policy to one entry."""
    if policy is PruningPolicy.NONE:
        return False
    if policy is PruningPolicy.EXPIRED:
        return entry_is_expired(entry, now)
    return entry_is_hopeless(entry, now, processing_delay_ms, epsilon)
