"""Invalid-message detection (Section 5.4, Eq. 11).

A queued copy is deleted when every subscription it still serves is
hopeless: ``∀ i: success(s_i, m) < ε`` with ε small (the paper uses
0.05 % = 5·10⁻⁴).  Because an expired pair has success ≈ 0 < ε, the
ε-rule subsumes plain expiry; the FIFO/RL baselines apply only the plain
expiry rule (deleting already-dead messages is standard practice and is
what keeps their traffic finite), which :class:`PruningPolicy` encodes.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.core.metrics import max_success_vec
from repro.core.strategies import QueueEntry
from repro.stats.normal import Normal

#: The paper's ε (0.05 %).
DEFAULT_EPSILON = 5e-4


def _effective_deadline_vec(entry: QueueEntry) -> np.ndarray:
    """Per-row ``adl`` (Eq. 5's allowed delay): the row/message minimum,
    with unspecified deadlines already ``inf`` in the column arrays."""
    msg_dl = entry.message.deadline_ms
    deadline = entry.arrays.deadline
    if msg_dl is None:
        return deadline
    return np.minimum(deadline, msg_dl)


class PruningPolicy(enum.Enum):
    """Which invalid-message rule an output queue applies."""

    NONE = "none"  # never delete (ablation only; traffic can explode)
    EXPIRED = "expired"  # delete when every deadline has already passed
    PROBABILISTIC = "probabilistic"  # Eq. 11: delete when hopeless (< ε)

    @staticmethod
    def for_strategy(probabilistic_pruning: bool) -> "PruningPolicy":
        return (
            PruningPolicy.PROBABILISTIC
            if probabilistic_pruning
            else PruningPolicy.EXPIRED
        )


def entry_is_expired(entry: QueueEntry, now: float) -> bool:
    """True iff every (subscription, message) pair's deadline has passed."""
    return not bool(np.any(entry.message.hdl(now) <= _effective_deadline_vec(entry)))


def entry_is_hopeless(
    entry: QueueEntry,
    now: float,
    processing_delay_ms: float,
    epsilon: float = DEFAULT_EPSILON,
) -> bool:
    """Eq. 11: every remaining subscription has success < ε."""
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return max_success_vec(entry.arrays, entry.message, now, processing_delay_ms) < epsilon


def should_prune(
    entry: QueueEntry,
    now: float,
    processing_delay_ms: float,
    policy: PruningPolicy,
    epsilon: float = DEFAULT_EPSILON,
) -> bool:
    """Apply the queue's pruning policy to one entry."""
    if policy is PruningPolicy.NONE:
        return False
    if policy is PruningPolicy.EXPIRED:
        return entry_is_expired(entry, now)
    return entry_is_hopeless(entry, now, processing_delay_ms, epsilon)


# ---------------------------------------------------------------------- #
# Prune horizons: when could an entry *first* become prunable?
#
# Both rules are per-row thresholds on the message age: a pair expires
# when ``hdl > adl`` and turns hopeless when its success probability drops
# below ε, i.e. when ``hdl > adl − NN·PD − size·(μ + σ·Φ⁻¹(ε))``.  An
# entry is prunable only once *every* row has crossed its threshold, so
# the entry-level horizon is the max over rows.  The scheduled queue keeps
# an expiry-ordered side index on these horizons and only re-evaluates the
# exact predicate for entries whose horizon has been reached — the
# analytic inversion is used as a conservative filter, never as the final
# decision, so a float-level disagreement with the forward predicate
# cannot change behaviour.
# ---------------------------------------------------------------------- #

_STD_NORMAL = Normal(0.0, 1.0)
_z_cache: dict[float, float] = {}


def _std_normal_quantile(q: float) -> float:
    z = _z_cache.get(q)
    if z is None:
        z = _z_cache[q] = _STD_NORMAL.quantile(q)
    return z


def prune_horizon(
    entry: QueueEntry,
    processing_delay_ms: float,
    policy: PruningPolicy,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Earliest simulated time at which ``entry`` could satisfy
    :func:`should_prune` (``inf`` = never, e.g. an unbounded pair).

    The value is a lower bound up to float rounding; callers must confirm
    with :func:`should_prune` before deleting.
    """
    if policy is PruningPolicy.NONE:
        return math.inf
    publish = entry.message.publish_time
    adl = _effective_deadline_vec(entry)
    if policy is PruningPolicy.EXPIRED:
        if np.any(np.isinf(adl)):
            return math.inf  # an unbounded pair never expires
        return float(np.max(publish + adl))
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if epsilon >= 1.0:
        return -math.inf  # every probability is < ε: prunable from the start
    if np.any(np.isinf(adl)):
        return math.inf  # an unbounded pair always succeeds: never prunable
    z = _std_normal_quantile(epsilon)
    size = entry.message.size_kb
    arrays = entry.arrays
    # success < ε  ⟺  hdl > adl − NN·PD − size·(μ + σ·z); a degenerate
    # path (σ = 0) steps from 1 to 0 at the mean itself.  The expression
    # keeps the scalar loop's operation order per element, so horizons
    # are bit-identical to the row-by-row computation.
    ramp = np.where(arrays.std == 0.0, arrays.mean, arrays.mean + arrays.std * z)
    return float(np.max(publish + adl - arrays.nn * processing_delay_ms - size * ramp))
