"""The documented left-fold float helpers (the RL006 contract).

Float totals in this project are *defined* as the sequential
left-to-right chain of float64 additions the scalar oracle performs
(``acc += value`` in arrival order).  Pairwise-reassociating reductions
(``np.sum``, ``ndarray.sum()``) compute a different float in general —
off by an ULP is enough to flip a scheduling comparison or a
differential test — so every metrics-path float total goes through one
of these two helpers (or the ledger's ``_FoldedSum``, which is the
amortised streaming form of the same chain).

``fold_sum`` is byte-identical to builtin ``sum`` over floats (both are
the left fold from 0) — its value is being *named*: the call site states
the fold order is part of the contract, and ``repro lint`` (RL006) can
tell sanctioned folds from accidental reductions.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def fold_sum(values: Iterable[float], start: float = 0.0) -> float:
    """Sequential left-to-right float sum: ``((start + v0) + v1) + ...``."""
    acc = float(start)
    for value in values:
        acc += value
    return acc


def fold_mean(values: Iterable[float]) -> float:
    """``fold_sum(values) / n`` — 0.0 for an empty iterable."""
    acc = 0.0
    n = 0
    for value in values:
        acc += value
        n += 1
    return acc / n if n else 0.0


def fold_sum_array(values: np.ndarray, start: float = 0.0) -> float:
    """The same sequential chain as :func:`fold_sum`, without a Python
    loop: ``np.add.accumulate`` is a left-to-right *accumulation*
    (pairwise reassociation applies to reductions, never accumulations),
    so seeding it with ``start`` reproduces the running sum byte-for-byte.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return float(start)
    return float(np.add.accumulate(np.concatenate(((float(start),), arr)))[-1])
