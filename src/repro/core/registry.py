"""Name-based strategy construction for configs, CLI and sweeps."""

from __future__ import annotations

from typing import Any

from repro.core.strategies import (
    EbpcStrategy,
    EbStrategy,
    FifoStrategy,
    PcStrategy,
    RemainingLifetimeStrategy,
    Strategy,
)

#: Canonical strategy names accepted by :func:`make_strategy`.
STRATEGY_NAMES: tuple[str, ...] = ("fifo", "rl", "eb", "pc", "ebpc")


def make_strategy(name: str, **kwargs: Any) -> Strategy:
    """Build a strategy by name.

    ``ebpc`` accepts ``r`` (EB weight, default 0.5) and ``rl`` accepts
    ``aggregation`` ("average", the paper's choice, or "min"); the other
    strategies take no parameters.  Unknown names or stray parameters raise
    ``ValueError`` so config typos fail loudly.
    """
    key = name.strip().lower()
    if key == "rl":
        return RemainingLifetimeStrategy(**kwargs)
    if key == "fifo":
        cls: type[Strategy] = FifoStrategy
    elif key == "eb":
        cls = EbStrategy
    elif key == "pc":
        cls = PcStrategy
    elif key == "ebpc":
        return EbpcStrategy(**kwargs)
    else:
        raise ValueError(f"unknown strategy {name!r}; known: {', '.join(STRATEGY_NAMES)}")
    if kwargs:
        raise ValueError(f"strategy {name!r} takes no parameters, got {sorted(kwargs)}")
    return cls()
