"""Optional compiled kernels behind the ``repro[fast]`` extra.

The hot scoring loop bottoms out in elementwise ``erf`` over z-score
arrays (:func:`repro.stats.normal.normal_cdf_vec`).  Stock CPython has no
vectorised ``math.erf``, so the portable implementation is a
``np.frompyfunc`` wrapper — one Python call per element.  With numba
installed (``pip install repro-pubsub[fast]``) the same kernel compiles
to a libm-backed ufunc with no per-element interpreter round-trip.

Both paths MUST be bit-identical: CPython's ``math.erf`` and numba's
lower to the platform libm ``erf``, and the differential test in
``tests/stats`` asserts equality element-for-element whenever numba is
importable (it skips cleanly otherwise — the extra is never required).

Independent of the backend, saturated inputs are cut before the ufunc:
``math.erf(x)`` returns exactly ``±1.0`` for ``|x| >= 6`` (true
``erfc(6) ≈ 2.2e-17`` is under half an ulp of 1.0, so correctly-rounded
and fdlibm-style implementations both round to 1).  That claim is
*verified at import time* against this platform's libm; if any spot
check disagrees the threshold collapses to ``inf`` and every element
goes through the ufunc.  At paper scale most pair deadlines sit far in a
distribution's tail, so the cut removes the bulk of the per-element
calls without touching a single output bit.
"""

from __future__ import annotations

import math

import numpy as np

try:  # pragma: no cover - exercised only with the [fast] extra installed
    import numba as _numba

    HAVE_NUMBA = True
except ImportError:
    _numba = None
    HAVE_NUMBA = False

#: Saturation threshold: smallest |z| for which ``math.erf`` is exactly
#: ±1.0 on this platform (``inf`` disables the cut if the spot checks
#: fail — correctness never depends on the libm's rounding).
ERF_SATURATION = 6.0 if all(
    math.erf(v) == 1.0 and math.erf(-v) == -1.0
    for v in (6.0, 6.5, 8.0, 16.0, 1e6, math.inf)
) else math.inf

_ERF_UFUNC = np.frompyfunc(math.erf, 1, 1)


def _erf_dense_pure(z: np.ndarray) -> np.ndarray:
    """Portable elementwise erf: one ``math.erf`` call per element
    (object-dtype ufunc cast back to float64)."""
    return _ERF_UFUNC(z).astype(np.float64)


if HAVE_NUMBA:  # pragma: no cover - exercised only with the [fast] extra
    @_numba.vectorize(["float64(float64)"], nopython=True, cache=True)
    def _erf_dense_numba(z: float) -> float:
        return math.erf(z)

    _erf_dense = _erf_dense_numba
else:
    _erf_dense = _erf_dense_pure


def erf_array(z: np.ndarray) -> np.ndarray:
    """Elementwise ``math.erf`` over a float64 array, bit-identical to a
    per-element Python loop; saturated tails short-circuit to ±1.0.

    NaNs never satisfy the saturation comparison, so they fall through to
    the ufunc and come back NaN exactly as ``math.erf`` returns them.
    """
    sat = np.abs(z) >= ERF_SATURATION
    if not sat.any():
        return _erf_dense(z)
    out = np.copysign(1.0, z)
    live = ~sat
    if live.any():
        out[live] = _erf_dense(z[live])
    return out
