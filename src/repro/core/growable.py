"""Growable numpy columns: the storage primitive of the columnar spine.

Appending to a plain ``np.ndarray`` reallocates on every call, and a
Python ``list`` forces per-element boxing on the way back out.  A
:class:`GrowableArray` amortises both: capacity doubles, the live prefix
is a zero-copy view, and whole batches land with one slice assignment.
The delivery log (:mod:`repro.pubsub.client`) and the ledger metrics
backend (:mod:`repro.pubsub.metrics`) both sit on this.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import DTypeLike

#: Starting capacity; small because most instances are per-subscriber or
#: per-message tallies that may never grow past a handful of entries.
_INITIAL_CAPACITY = 16


class GrowableArray:
    """An append-only 1-D array with amortised O(1) growth."""

    __slots__ = ("_data", "_n")

    def __init__(self, dtype: DTypeLike, capacity: int = _INITIAL_CAPACITY) -> None:
        self._data = np.zeros(max(capacity, 1), dtype=dtype)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        if need <= self._data.shape[0]:
            return
        cap = self._data.shape[0]
        while cap < need:
            cap *= 2
        grown = np.zeros(cap, dtype=self._data.dtype)
        grown[: self._n] = self._data[: self._n]
        self._data = grown

    def append(self, value: float | int | bool) -> None:
        self._reserve(1)
        self._data[self._n] = value
        self._n += 1

    def extend(self, values: np.ndarray) -> None:
        k = len(values)
        if k == 0:
            return
        self._reserve(k)
        self._data[self._n : self._n + k] = values
        self._n += k

    def extend_scalar(self, value: float | int | bool, count: int) -> None:
        """Append ``count`` copies of one scalar with a single broadcast
        slice-fill — no ``np.full`` temporary on the append hot path."""
        if count <= 0:
            return
        self._reserve(count)
        self._data[self._n : self._n + count] = value
        self._n += count

    @property
    def capacity(self) -> int:
        return self._data.shape[0]

    def view(self) -> np.ndarray:
        """Zero-copy view of the live prefix.

        Aliasing contract (pinned by ``tests/core/test_growable.py``): the
        view shares the *current* buffer, so later appends that fit in
        place are visible through it, while a reallocating grow detaches
        it — the view keeps the old buffer and goes stale.  Holders that
        need a stable snapshot must copy (or use :meth:`detach`).
        """
        return self._data[: self._n]

    def detach(self) -> np.ndarray:
        """Seal and hand over the live prefix; the array resets to empty.

        Zero-copy when the buffer is exactly full (the chunk-store case:
        fixed-capacity columns sealed at capacity), otherwise the prefix
        is copied out.  The returned array is marked read-only — it is an
        immutable chunk from this moment on.
        """
        out = self._data if self._n == self._data.shape[0] else self._data[: self._n].copy()
        out.setflags(write=False)
        self._data = np.zeros(_INITIAL_CAPACITY, dtype=self._data.dtype)
        self._n = 0
        return out

    def at_least(self, size: int) -> np.ndarray:
        """View of the first ``max(size, len)`` slots, growing with zeros.

        Used for dense-id tallies: indexing by a freshly interned id is
        valid immediately, unfilled slots read as zero.
        """
        if size > self._n:
            self._reserve(size - self._n)
            self._n = size
        return self._data[: self._n]
