"""The ScheduledQueue subsystem: incremental output-queue servicing.

The broker's legacy hot path rescored **every** waiting entry on every
send (``Strategy.select``) and rescanned the whole queue on every prune
(``should_prune`` over all entries), making one queue drain O(n²) — worst
exactly where the paper's Figures 5/6 live (saturated links, deep
queues).  :class:`ScheduledQueue` owns the waiting entries of one output
queue and makes both operations incremental while reproducing the legacy
decisions *exactly* (max score, FIFO tie-break on seq):

* **Selection** is delegated to a backend chosen from the strategy's
  :attr:`~repro.core.strategies.Strategy.score_kind` capability:

  - ``static`` / ``age_monotone`` → :class:`_KeyedHeapBackend`, an exact
    lazy heap on the strategy's time-invariant ``static_key`` (FIFO's
    ``−seq``; RL's scores all decay at 1 ms/ms, so its ordering never
    changes either).
  - ``dynamic`` with a score bound → :class:`_BoundedHeapBackend`, an
    amortised re-validation heap: entries carry the upper bound from
    ``score_and_bound`` (for EB/PC/EBPC the current EB, which shrinks as
    messages age); a selection pops and freshly rescores only the top
    candidates until the next stale bound cannot beat the best fresh
    score.  Everything examined is reinserted with its tightened bound.
  - ``dynamic`` without a bound → :class:`_ScanBackend`, the legacy full
    rescan — retained as the correctness oracle and as the fallback for
    strategies that advertise no capability.

* **Pruning** drains an expiry-ordered side index instead of scanning:
  entries are keyed by their analytic :func:`~repro.core.pruning.
  prune_horizon` (minus a safety margin); only entries whose horizon has
  arrived are re-checked with the exact :func:`~repro.core.pruning.
  should_prune` predicate, so the analytic inversion can never flip a
  decision.

``validate=True`` cross-checks every selection and prune against the
legacy full-scan oracle and raises :class:`QueueDivergence` on the first
mismatch — the differential tests run whole simulations in this mode.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator

from repro.core.context import SchedulingContext
from repro.core.pruning import (
    DEFAULT_EPSILON,
    PruningPolicy,
    prune_horizon,
    should_prune,
)
from repro.core.strategies import QueueEntry, Strategy

#: Drain entries this long (simulated ms) before their analytic prune
#: horizon: absorbs any float disagreement between the analytic inversion
#: and the forward predicate.  Entries drained early are simply re-checked
#: and reinserted, so the margin trades a handful of re-evaluations for
#: certainty that no horizon is reached late.
PRUNE_HORIZON_MARGIN_MS = 1e-6

#: Relative/absolute slack added to stored score bounds so that sub-ulp
#: non-monotonicity in the vectorised kernels (float dot products are not
#: perfectly monotone) can never hide a candidate from re-examination.
_BOUND_SLACK_ABS = 1e-9
_BOUND_SLACK_REL = 1e-12

#: Keyed-heap tie window: an age_monotone score is ``static_key + f(now)``
#: only up to summation rounding, so two keys this close can swap (or tie)
#: when the legacy score computes them at a given instant.  Candidates
#: inside the window are re-scored with the real score so the selection
#: matches the full-scan oracle exactly; outside it the key order is
#: provably the score order.
_KEY_TIE_SLACK_ABS = 1e-6
_KEY_TIE_SLACK_REL = 1e-9

#: Recognised backend selectors for :class:`ScheduledQueue`.
BACKENDS = ("auto", "heap", "scan")


class QueueDivergence(AssertionError):
    """A validated ScheduledQueue decision differed from the legacy oracle."""


def _compact_heap(heap: list[tuple[float, int]], live: dict[int, QueueEntry]) -> None:
    """Drop stale records once they outnumber the live entries.

    Lazy deletion only discards a dead record when it reaches the heap
    top; pruned entries with low keys/bounds would otherwise accumulate
    for the life of the queue in a long saturated run.  Rebuilding when
    more than half the heap is dead keeps the heap O(live) with amortised
    O(1) cost per discarded record.
    """
    if len(heap) > 2 * len(live) + 16:
        heap[:] = [record for record in heap if record[1] in live]
        heapq.heapify(heap)


class _ScanBackend:
    """Legacy full rescan over the live entries — the correctness oracle."""

    name = "scan"

    def __init__(self, strategy: Strategy, live: dict[int, QueueEntry]) -> None:
        self._strategy = strategy
        self._live = live

    def push(self, entry: QueueEntry) -> None:
        pass  # the live dict is the only state

    def compact(self) -> None:
        pass

    def pop_best(self, ctx: SchedulingContext) -> QueueEntry:
        if not self._live:
            raise IndexError("pop from an empty scheduled queue")
        entries = list(self._live.values())
        entry = entries[self._strategy.select(entries, ctx)]
        del self._live[entry.seq]
        return entry


class _KeyedHeapBackend:
    """Exact heap for time-invariant orderings (static / age_monotone).

    Records are ``(−static_key, seq)`` so the heap top is the max-score,
    min-seq entry.  Pruned entries are deleted lazily: their records stay
    in the heap and are skipped once their seq is no longer live.

    Keys align with scores only up to float rounding (an RL score is
    ``static_key + now`` in exact arithmetic, but the legacy score sums
    per-row lifetimes independently), so candidates whose key lies within
    a small slack of the top key are popped and re-ranked with the *real*
    score — any entry further down provably scores strictly below the
    best and cannot win or tie.  For FIFO keys are exact integers spaced
    ≥ 1 apart, so the window never admits a second candidate.
    """

    name = "heap"

    def __init__(self, strategy: Strategy, live: dict[int, QueueEntry]) -> None:
        self._strategy = strategy
        self._live = live
        self._heap: list[tuple[float, int]] = []

    def push(self, entry: QueueEntry) -> None:
        heapq.heappush(self._heap, (-self._strategy.static_key(entry), entry.seq))

    def compact(self) -> None:
        _compact_heap(self._heap, self._live)

    def pop_best(self, ctx: SchedulingContext) -> QueueEntry:
        heap = self._heap
        strategy = self._strategy
        best_key: tuple[float, float] | None = None
        best_entry: QueueEntry | None = None
        floor: float | None = None  # keys below this cannot beat or tie the best
        examined: list[tuple[float, int]] = []
        while heap:
            neg_key, seq = heap[0]
            entry = self._live.get(seq)
            if entry is None:
                heapq.heappop(heap)  # pruned earlier; drop the stale record
                continue
            if floor is not None and -neg_key < floor:
                break
            heapq.heappop(heap)
            examined.append((neg_key, seq))
            key = (strategy.score(entry, ctx), -seq)
            if best_key is None or key > best_key:
                best_key, best_entry = key, entry
            if floor is None and math.isfinite(-neg_key):
                # Anchor the window at the maximum key (the first record
                # popped): anything below max_key − slack provably scores
                # strictly under the max-key entry, hence under the best.
                # A queue whose keys are all −inf never anchors and
                # examines everything — those entries are genuinely tied.
                slack = _KEY_TIE_SLACK_ABS + _KEY_TIE_SLACK_REL * abs(neg_key)
                floor = -neg_key - slack
        if best_entry is None:
            raise IndexError("pop from an empty scheduled queue")
        for neg_key, seq in examined:
            if seq != best_entry.seq:
                heapq.heappush(heap, (neg_key, seq))
        del self._live[best_entry.seq]
        return best_entry


class _BoundedHeapBackend:
    """Amortised re-validation heap for time-varying (dynamic) scores.

    Each record carries an upper bound on the entry's score at any future
    decision (new entries start at ``inf``: they must be scored at least
    once).  A selection pops candidates in decreasing stale-bound order,
    rescoring each with the *current* context, and stops as soon as the
    next stale bound is strictly below the best fresh score — every
    unexamined entry then satisfies ``score <= bound < best`` and can
    neither win nor tie.  Examined non-winners are reinserted with their
    tightened fresh bound, so repeated selections over a deep queue touch
    only the contended top instead of rescoring all n entries.
    """

    name = "heap"

    def __init__(self, strategy: Strategy, live: dict[int, QueueEntry]) -> None:
        self._strategy = strategy
        self._live = live
        self._heap: list[tuple[float, int]] = []

    def push(self, entry: QueueEntry) -> None:
        heapq.heappush(self._heap, (-math.inf, entry.seq))

    def compact(self) -> None:
        _compact_heap(self._heap, self._live)

    @staticmethod
    def _padded(bound: float) -> float:
        if math.isinf(bound):
            return bound
        return bound + _BOUND_SLACK_ABS + _BOUND_SLACK_REL * abs(bound)

    def pop_best(self, ctx: SchedulingContext) -> QueueEntry:
        heap = self._heap
        strategy = self._strategy
        best_key: tuple[float, float] | None = None
        best_entry: QueueEntry | None = None
        examined: list[tuple[int, float]] = []
        while heap:
            neg_bound, seq = heap[0]
            entry = self._live.get(seq)
            if entry is None:
                heapq.heappop(heap)  # pruned earlier; drop the stale record
                continue
            if best_key is not None and -neg_bound < best_key[0]:
                break  # no remaining stale bound can beat or tie the best
            heapq.heappop(heap)
            score, bound = strategy.score_and_bound(entry, ctx)
            examined.append((seq, bound))
            key = (score, -seq)
            if best_key is None or key > best_key:
                best_key, best_entry = key, entry
        if best_entry is None:
            raise IndexError("pop from an empty scheduled queue")
        for seq, bound in examined:
            if seq != best_entry.seq:
                heapq.heappush(heap, (-self._padded(bound), seq))
        del self._live[best_entry.seq]
        return best_entry


class _PruneIndex:
    """Expiry-ordered side index drained incrementally.

    Holds ``(horizon − margin, seq)`` records; :meth:`drain` pops every
    record whose horizon has arrived, confirms with the exact
    ``should_prune`` predicate, and reinserts false positives unchanged
    (they sit within the float margin of their true horizon and are
    re-checked on subsequent services until the predicate fires).
    """

    def __init__(
        self, policy: PruningPolicy, epsilon: float, planning_delay_ms: float
    ) -> None:
        self._policy = policy
        self._epsilon = epsilon
        self._planning_delay_ms = planning_delay_ms
        self._heap: list[tuple[float, int]] = []

    def push(self, entry: QueueEntry) -> None:
        horizon = prune_horizon(
            entry, self._planning_delay_ms, self._policy, self._epsilon
        )
        if not math.isinf(horizon):
            heapq.heappush(self._heap, (horizon - PRUNE_HORIZON_MARGIN_MS, entry.seq))

    def drain(self, now: float, live: dict[int, QueueEntry]) -> list[QueueEntry]:
        heap = self._heap
        pruned: list[QueueEntry] = []
        requeue: list[tuple[float, int]] = []
        while heap and heap[0][0] <= now:
            record = heapq.heappop(heap)
            entry = live.get(record[1])
            if entry is None:
                continue  # already sent; drop the stale record
            if should_prune(
                entry, now, self._planning_delay_ms, self._policy, self._epsilon
            ):
                pruned.append(entry)
                del live[entry.seq]
            else:
                requeue.append(record)
        for record in requeue:
            heapq.heappush(heap, record)
        pruned.sort(key=lambda e: e.seq)  # legacy trace order: queue order
        return pruned

    def compact(self, live: dict[int, QueueEntry]) -> None:
        _compact_heap(self._heap, live)


class ScheduledQueue:
    """Entries waiting in one output queue, with incremental servicing.

    Owns entry storage, invalid-message pruning and next-to-send
    selection; the broker keeps only the receive/process/forward wiring.
    Decisions are equivalent to the legacy full scans event for event.
    """

    def __init__(
        self,
        strategy: Strategy,
        pruning: PruningPolicy,
        epsilon: float = DEFAULT_EPSILON,
        planning_delay_ms: float = 2.0,
        backend: str = "auto",
        validate: bool = False,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if planning_delay_ms < 0.0:
            raise ValueError("planning_delay_ms must be non-negative")
        self.strategy = strategy
        self.pruning = pruning
        self.epsilon = epsilon
        self.planning_delay_ms = planning_delay_ms
        self.validate = validate
        #: seq -> entry, in insertion (= seq) order; the single source of
        #: truth for liveness.  Heap records pointing at missing seqs are
        #: stale and skipped lazily.
        self._live: dict[int, QueueEntry] = {}
        self._backend = self._pick_backend(backend)
        self._prune_index = (
            _PruneIndex(pruning, epsilon, planning_delay_ms)
            if pruning is not PruningPolicy.NONE
            else None
        )

    def _pick_backend(
        self, backend: str
    ) -> "_ScanBackend | _KeyedHeapBackend | _BoundedHeapBackend":
        if backend == "scan":
            return _ScanBackend(self.strategy, self._live)
        kind = self.strategy.score_kind
        if kind in ("static", "age_monotone"):
            return _KeyedHeapBackend(self.strategy, self._live)
        if kind != "dynamic":
            raise ValueError(f"unknown score_kind {kind!r} on {self.strategy!r}")
        if type(self.strategy).score_and_bound is not Strategy.score_and_bound:
            return _BoundedHeapBackend(self.strategy, self._live)
        if backend == "heap":
            raise ValueError(
                f"{self.strategy.name}: dynamic strategy without score_and_bound "
                "cannot use the heap backend"
            )
        return _ScanBackend(self.strategy, self._live)  # full-rescan fallback

    @property
    def backend_name(self) -> str:
        return self._backend.name

    # ------------------------------------------------------------------ #
    # Mutation.
    # ------------------------------------------------------------------ #
    def push(self, entry: QueueEntry) -> None:
        """Admit one entry (seqs must be unique and increasing)."""
        if entry.seq in self._live:
            raise ValueError(f"duplicate seq {entry.seq}")
        if self.validate or self._backend.name == "scan":
            # These paths re-score entries through ``entry.rows`` at pop
            # time; force deferred row materialisation now, while the
            # source table still matches the enqueue-time snapshot.
            entry.rows
        self._live[entry.seq] = entry
        self._backend.push(entry)
        if self._prune_index is not None:
            self._prune_index.push(entry)

    def push_many(self, entries: list[QueueEntry]) -> None:
        """Admit a window's entries in order (the fused engine's batched
        enqueue).  Admission order is observable — heap tie-breaks and the
        prune index key on seq — so this is sequenced, not reordered:
        element ``i`` lands exactly as ``push(entries[i])`` would."""
        for entry in entries:
            self.push(entry)

    def prune(self, now: float) -> list[QueueEntry]:
        """Delete and return every entry invalid at ``now`` (seq order)."""
        if self._prune_index is None:
            return []
        if self.validate:
            expected = {
                e.seq
                for e in self._live.values()
                if should_prune(e, now, self.planning_delay_ms, self.pruning, self.epsilon)
            }
        pruned = self._prune_index.drain(now, self._live)
        if self.validate and {e.seq for e in pruned} != expected:
            raise QueueDivergence(
                f"prune at t={now}: index drained {sorted(e.seq for e in pruned)}, "
                f"full scan expected {sorted(expected)}"
            )
        if pruned:
            # Pruned entries leave stale records behind in the selection
            # heap (and sent entries in the prune index); reclaim them
            # before they dominate a long saturated run.
            self._backend.compact()
            self._prune_index.compact(self._live)
        return pruned

    def drain_aged(self, now: float, max_age_ms: float) -> list[QueueEntry]:
        """Delete and return every entry enqueued ``max_age_ms`` or more
        ago (seq order) — the dead-letter sweep for a hard-down link.

        Orthogonal to :meth:`prune`: pruning removes entries that can no
        longer be *useful*; this removes entries the channel could not
        carry within the fault-tolerance window, regardless of validity.
        Stale heap/prune-index records left behind are reclaimed the same
        way pruning reclaims them.
        """
        aged = [
            e for e in self._live.values() if now - e.enqueue_time >= max_age_ms
        ]
        if aged:
            for entry in aged:
                del self._live[entry.seq]
            aged.sort(key=lambda e: e.seq)
            self._backend.compact()
            if self._prune_index is not None:
                self._prune_index.compact(self._live)
        return aged

    def pop_best(self, ctx: SchedulingContext) -> QueueEntry:
        """Remove and return the entry the strategy would send next."""
        if self.validate and self._live:
            entries = list(self._live.values())
            oracle = entries[self.strategy.select(entries, ctx)]
        entry = self._backend.pop_best(ctx)
        if self.validate and entry is not oracle:
            raise QueueDivergence(
                f"select at t={ctx.now}: backend chose seq {entry.seq}, "
                f"full scan chose seq {oracle.seq}"
            )
        return entry

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __iter__(self) -> Iterator[QueueEntry]:
        return iter(list(self._live.values()))

    def entries(self) -> list[QueueEntry]:
        """Snapshot of the waiting entries in queue (seq) order."""
        return list(self._live.values())
