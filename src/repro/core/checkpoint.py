"""Versioned, atomic checkpoint save/restore for full engine state.

A checkpoint is a **directory**, not a file::

    <name>/
        MANIFEST.json     version, code/config fingerprints, run metadata
        state.pkl         the pickled object graph (DES heap, RNG streams,
                          tables, queues, monitors, metrics, logs)
        chunks/           spilled log chunks, copied file-to-file

The pickled graph is the *live system object* — every pending
:class:`~repro.des.event.Event` serializes its action (a
``functools.partial`` of a bound method) by reference within the graph,
so scheduled publications, queue-service completions and dynamics
interventions all survive without a registry of callback names.  Spilled
log chunks travel as files through :func:`repro.core.chunked.spill_transfer`
rather than being inlined into the pickle, so checkpointing a
bounded-memory run stays bounded-memory.

Atomicity: the directory is assembled under a dot-prefixed temp name in
the same parent and published with ``os.rename``; a crash mid-save
leaves at most a temp directory that the next save sweeps away, never a
half-written checkpoint that :func:`latest_checkpoint` could pick up.

Compatibility policy (version 1): a snapshot binds to the exact code
tree (sha256 over the package's ``*.py`` files) and to caller-supplied
fingerprints (the run's config).  Loading refuses a version or
fingerprint mismatch with :class:`CheckpointMismatch` — resumption is
only provably byte-identical under the same decisions, so anything else
is an error, not a warning.  ``allow_code_mismatch=True`` exists for
debugging archaeology only.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from pathlib import Path
from time import perf_counter
from typing import Any

from repro.core.chunked import spill_transfer

#: Bump when the on-disk layout or pickled-state contract changes in a
#: way old readers cannot interpret.  Policy: no cross-version loading —
#: a checkpoint is a resume token for one code tree, not an archive
#: format (see README "Crash safety & resume").
CHECKPOINT_VERSION = 1

_MANIFEST = "MANIFEST.json"
_STATE = "state.pkl"
_CHUNKS = "chunks"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, found, or read."""


class CheckpointMismatch(CheckpointError):
    """The snapshot exists but belongs to different code or config."""


# ---------------------------------------------------------------------- #
# Code fingerprint.
# ---------------------------------------------------------------------- #
_CODE_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """sha256 over the ``repro`` package's source tree (paths + bytes).

    Memoized for the process lifetime: the tree cannot change under a
    running simulation, and checkpoint cadence can be tight.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        root = Path(__file__).resolve().parents[1]
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\x00")
            h.update(path.read_bytes())
            h.update(b"\x00")
        _CODE_FINGERPRINT = h.hexdigest()
    return _CODE_FINGERPRINT


# ---------------------------------------------------------------------- #
# Save / load.
# ---------------------------------------------------------------------- #
def _fsync_tree(root: Path) -> None:
    """fsync every file then the directories, so the rename that follows
    publishes fully durable contents."""
    for path in sorted(root.rglob("*")):
        if path.is_file():
            fd = os.open(path, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
    for path in [root, *sorted(p for p in root.rglob("*") if p.is_dir())]:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def _sweep_stale_tmp(parent: Path, name: str) -> None:
    """Remove temp directories left by crashed writers of this snapshot."""
    for stale in parent.glob(f".{name}.tmp-*"):
        shutil.rmtree(stale, ignore_errors=True)


def save_checkpoint(
    state: Any,
    path: Path | str,
    *,
    fingerprints: dict[str, str] | None = None,
    meta: dict[str, Any] | None = None,
    overwrite: bool = False,
) -> Path:
    """Write ``state`` as an atomic checkpoint directory at ``path``.

    Returns the final path.  ``fingerprints`` are opaque caller identities
    (e.g. the config fingerprint) that :func:`load_checkpoint` will demand
    back verbatim; ``meta`` is informational (surfaced in the manifest for
    humans and smoke tests, never verified).
    """
    path = Path(path)
    parent = path.parent
    parent.mkdir(parents=True, exist_ok=True)
    if path.exists() and not overwrite:
        raise CheckpointError(f"checkpoint already exists: {path}")
    _sweep_stale_tmp(parent, path.name)
    tmp = parent / f".{path.name}.tmp-{os.getpid()}"
    try:
        tmp.mkdir(parents=True)
        chunks_dir = tmp / _CHUNKS
        chunks_dir.mkdir()
        with open(tmp / _STATE, "wb") as fh:
            with spill_transfer(chunks_dir):
                pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
        chunk_files = sorted(
            str(p.relative_to(chunks_dir)) for p in chunks_dir.rglob("*.npz")
        )
        manifest = {
            "version": CHECKPOINT_VERSION,
            "code": code_fingerprint(),
            "fingerprints": dict(fingerprints or {}),
            "meta": dict(meta or {}),
            "chunks": chunk_files,
        }
        (tmp / _MANIFEST).write_text(json.dumps(manifest, indent=2, sort_keys=True))
        _fsync_tree(tmp)
        if path.exists():
            # Rename the old snapshot away first: the target of os.rename
            # must not exist for directories.
            old = parent / f".{path.name}.old-{os.getpid()}"
            os.rename(path, old)
            os.rename(tmp, path)
            shutil.rmtree(old, ignore_errors=True)
        else:
            os.rename(tmp, path)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


def read_manifest(path: Path | str) -> dict:
    """Parse a checkpoint's manifest (no state load, no verification)."""
    path = Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise CheckpointError(f"not a checkpoint directory: {path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CheckpointError(f"malformed checkpoint manifest: {manifest_path}")
    return manifest


def load_checkpoint(
    path: Path | str,
    *,
    fingerprints: dict[str, str] | None = None,
    allow_code_mismatch: bool = False,
) -> tuple[Any, dict]:
    """Verify and restore a checkpoint; returns ``(state, manifest)``.

    Every key in ``fingerprints`` must match the manifest exactly; the
    snapshot version and code fingerprint are always checked (the latter
    bypassable with ``allow_code_mismatch`` for debugging only).
    """
    path = Path(path)
    manifest = read_manifest(path)
    version = manifest.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointMismatch(
            f"checkpoint {path} has version {version!r}; this build reads "
            f"version {CHECKPOINT_VERSION} only (no cross-version resume)"
        )
    code = manifest.get("code")
    if code != code_fingerprint() and not allow_code_mismatch:
        raise CheckpointMismatch(
            f"checkpoint {path} was written by a different code tree "
            f"({str(code)[:12]}… vs {code_fingerprint()[:12]}…); resume "
            "identity is only guaranteed on the same tree "
            "(allow_code_mismatch=True to override for debugging)"
        )
    saved = manifest.get("fingerprints") or {}
    for key, expected in (fingerprints or {}).items():
        if saved.get(key) != expected:
            raise CheckpointMismatch(
                f"checkpoint {path} fingerprint {key!r} mismatch: "
                f"snapshot has {saved.get(key)!r}, caller expects {expected!r}"
            )
    try:
        with open(path / _STATE, "rb") as fh:
            with spill_transfer(path / _CHUNKS):
                state = pickle.load(fh)
    except OSError as exc:
        raise CheckpointError(f"unreadable checkpoint state {path}: {exc}") from exc
    return state, manifest


def latest_checkpoint(directory: Path | str) -> Path | None:
    """Newest valid snapshot under a checkpoint root (``None`` if none).

    Snapshots are named so lexicographic order is execution order
    (``ckpt-{executed:012d}``); temp/old directories are dot-prefixed and
    skipped by the glob, and a snapshot without a readable manifest is
    ignored rather than trusted.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    best: Path | None = None
    for cand in sorted(directory.glob("ckpt-*"), reverse=True):
        if not cand.is_dir():
            continue
        try:
            read_manifest(cand)
        except CheckpointError:
            continue
        best = cand
        break
    return best


def checkpoint_size_bytes(path: Path | str) -> int:
    """Total on-disk size of one snapshot directory."""
    return sum(p.stat().st_size for p in Path(path).rglob("*") if p.is_file())


def timed_save(
    state: Any,
    path: Path | str,
    **kwargs: Any,
) -> tuple[Path, float, int]:
    """:func:`save_checkpoint` plus ``(path, seconds, bytes)`` accounting
    for the bench guard and run stats."""
    t0 = perf_counter()  # repro-lint: ignore[RL001] -- snapshot write-cost stat, decision-neutral
    out = save_checkpoint(state, path, **kwargs)
    # repro-lint: ignore[RL001] -- snapshot write-cost stat, decision-neutral
    return out, perf_counter() - t0, checkpoint_size_bytes(out)
