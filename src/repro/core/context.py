"""Per-decision scheduling context."""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.normal import Normal


@dataclass(frozen=True, slots=True)
class SchedulingContext:
    """Everything a strategy may consult when ranking one output queue.

    ``ft_ms`` is the paper's ``FT``: the estimated time to send one
    average-size message on *this* link first (average observed message
    size × the link's mean per-KB rate).  ``link_rate`` is the (possibly
    estimated) distribution of this link direction's per-KB rate —
    available for extensions, though the paper's metrics only use the
    remaining-path parameters stored in the subscription rows.
    """

    now: float
    processing_delay_ms: float
    ft_ms: float
    link_rate: Normal

    def __post_init__(self) -> None:
        if self.processing_delay_ms < 0.0:
            raise ValueError("processing_delay_ms must be non-negative")
        if self.ft_ms < 0.0:
            raise ValueError("ft_ms must be non-negative")
