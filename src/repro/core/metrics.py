"""The EB / PC / EBPC scheduling metrics (Section 5, Eqs. 3–10).

Scalar forms (`expected_benefit`, `postponing_cost`) are the readable
reference implementation; the ``*_vec`` forms evaluate one queue entry's
whole subscription set with numpy and are what the broker hot path uses.
Property tests assert scalar/vector agreement.
"""

from __future__ import annotations

import numpy as np

from repro.core.success import success_probability
from repro.pubsub.message import Message
from repro.pubsub.subscription import RowArrays, TableRow
from repro.stats.normal import normal_cdf_vec


def expected_benefit(
    rows: list[TableRow],
    message: Message,
    now: float,
    processing_delay_ms: float,
    extra_delay_ms: float = 0.0,
) -> float:
    """``EB_m = Σ success(s_i, m) · price(s_i)`` (Eq. 3).

    Unpriced subscriptions count with price 1 (the paper's PSD reduction).
    ``extra_delay_ms > 0`` computes the postponed EB′ of Eq. 8.
    """
    total = 0.0
    for row in rows:
        price = row.price if row.price is not None else 1.0
        total += price * success_probability(
            row, message, now, processing_delay_ms, extra_delay_ms
        )
    return total


def postponing_cost(
    rows: list[TableRow],
    message: Message,
    now: float,
    processing_delay_ms: float,
    ft_ms: float,
) -> float:
    """``PC_m = EB_m − EB'_m`` (Eq. 9)."""
    eb = expected_benefit(rows, message, now, processing_delay_ms)
    eb_postponed = expected_benefit(rows, message, now, processing_delay_ms, ft_ms)
    return eb - eb_postponed


def ebpc_value(eb: float, pc: float, r: float) -> float:
    """``EBPC = r · EB + (1 − r) · PC`` (Eq. 10)."""
    if not 0.0 <= r <= 1.0:
        raise ValueError(f"r must be in [0, 1], got {r}")
    return r * eb + (1.0 - r) * pc


# ---------------------------------------------------------------------- #
# Vectorised kernels over RowArrays.
# ---------------------------------------------------------------------- #
def success_vec(
    arrays: RowArrays,
    message: Message,
    now: float,
    processing_delay_ms: float,
    extra_delay_ms: float = 0.0,
) -> np.ndarray:
    """Per-row success probabilities; ``inf`` deadlines yield exactly 1."""
    deadline = np.minimum(
        arrays.deadline,
        message.deadline_ms if message.deadline_ms is not None else np.inf,
    )
    unconstrained = np.isinf(deadline)
    budget = deadline - message.hdl(now) - extra_delay_ms - arrays.nn * processing_delay_ms
    x = np.where(unconstrained, 0.0, budget) / message.size_kb
    probs = normal_cdf_vec(x, arrays.mean, arrays.std)
    probs[unconstrained] = 1.0
    return probs


def expected_benefit_vec(
    arrays: RowArrays,
    message: Message,
    now: float,
    processing_delay_ms: float,
    extra_delay_ms: float = 0.0,
) -> float:
    probs = success_vec(arrays, message, now, processing_delay_ms, extra_delay_ms)
    return float(np.dot(probs, arrays.price))


def eb_pair_vec(
    arrays: RowArrays,
    message: Message,
    now: float,
    processing_delay_ms: float,
    ft_ms: float,
) -> tuple[float, float]:
    """``(EB, EB′)`` — the base and postponed expected benefits (Eqs. 3, 8).

    The single place the pair is computed: PC is their difference and the
    scheduling strategies reuse the base EB as the future-score bound.
    """
    eb = expected_benefit_vec(arrays, message, now, processing_delay_ms)
    eb_postponed = expected_benefit_vec(arrays, message, now, processing_delay_ms, ft_ms)
    return eb, eb_postponed


def postponing_cost_vec(
    arrays: RowArrays,
    message: Message,
    now: float,
    processing_delay_ms: float,
    ft_ms: float,
) -> float:
    eb, eb_postponed = eb_pair_vec(arrays, message, now, processing_delay_ms, ft_ms)
    return eb - eb_postponed


def max_success_vec(
    arrays: RowArrays,
    message: Message,
    now: float,
    processing_delay_ms: float,
) -> float:
    """Highest per-row success probability — the pruning test input."""
    probs = success_vec(arrays, message, now, processing_delay_ms)
    return float(probs.max()) if len(probs) else 0.0
