"""Structured tracing for simulations.

Tracing is opt-in and costs one dict append per record; production sweeps
run with it disabled.  Tests and the examples use it to assert on event
causality (e.g. a message is never forwarded after it was pruned).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry: what happened, when, where, to which message."""

    time: float
    kind: str
    node: str
    detail: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only trace sink with cheap filtering helpers."""

    def __init__(self, enabled: bool = True, capacity: int | None = None) -> None:
        self.enabled = enabled
        self._capacity = capacity
        self._records: list[TraceRecord] = []
        self._dropped = 0

    def record(self, time: float, kind: str, node: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self._capacity is not None and len(self._records) >= self._capacity:
            self._dropped += 1
            return
        self._records.append(TraceRecord(time=time, kind=kind, node=node, detail=detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def dropped(self) -> int:
        """Records discarded because the capacity bound was hit."""
        return self._dropped

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self._records if r.kind == kind]

    def at_node(self, node: str) -> list[TraceRecord]:
        return [r for r in self._records if r.node == node]

    def kind_counts(self) -> Counter:
        return Counter(r.kind for r in self._records)

    def clear(self) -> None:
        self._records.clear()
        self._dropped = 0
