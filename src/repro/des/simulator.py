"""The event-heap simulator."""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Callable

from repro.core import profiling
from repro.des.event import Event, EventHandle


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling into the past, etc.)."""


class Simulator:
    """Deterministic discrete-event simulator.

    Time is a float in **milliseconds** throughout this project (the paper
    quotes link rates in ms/KB and processing delay in ms).  The kernel
    itself is unit-agnostic.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._executed = 0
        self._running = False
        #: Non-cancelled events still in the heap.  Maintained at schedule /
        #: cancel / execute time so the drained-early check in :meth:`run`
        #: is O(1) instead of a rescan of the heap per return.
        self._live = 0

    # ------------------------------------------------------------------ #
    # Serialization.
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Checkpoints snapshot the kernel *between* events — capturing a
        heap mid-``run()`` would freeze a half-executed action."""
        if self._running:
            raise SimulationError("cannot snapshot a running simulator")
        return self.__dict__.copy()

    # ------------------------------------------------------------------ #
    # Clock.
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (cancelled pops excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Events still in the heap, including lazily cancelled ones."""
        return len(self._heap)

    @property
    def live_events(self) -> int:
        """Events still in the heap that have not been cancelled."""
        return self._live

    # ------------------------------------------------------------------ #
    # Scheduling.
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
        kind: str = "",
        payload: object = None,
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(
            self._now + delay, action,
            priority=priority, label=label, kind=kind, payload=payload,
        )

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
        kind: str = "",
        payload: object = None,
    ) -> EventHandle:
        """Schedule ``action`` at absolute simulated time ``time``.

        ``kind``/``payload`` are optional typed-event metadata (see
        :class:`~repro.des.event.Event`): they let the fused engine's
        lookahead inspect pending work without executing it.  The action
        remains the sole executable either way.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        event = Event(float(time), priority, self._seq, action, label, kind=kind, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return EventHandle(event, self._note_cancelled)

    def _note_cancelled(self, event: Event) -> None:
        """Handle-cancel hook: keep the live counter exact.

        Cancelling an event that already ran leaves the counter alone —
        its live slot was consumed at execution time.
        """
        if not event.done:
            self._live -= 1

    # ------------------------------------------------------------------ #
    # Execution.
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False when idle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._executed += 1
            self._live -= 1
            event.done = True
            event.action()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        Events scheduled *exactly at* ``until`` are executed (closed
        interval), matching the "test period of length T" semantics of the
        experiments.  Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        prof = profiling.ACTIVE
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                t0 = perf_counter() if prof is not None else 0.0
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = head.time
                self._executed += 1
                executed += 1
                self._live -= 1
                head.done = True
                if prof is not None:
                    prof.add("pop", perf_counter() - t0)
                head.action()
            if until is not None and self._now < until and self._live == 0:
                # Drained early: advance the clock to the horizon so that
                # time-based metrics (rates per period) stay well-defined.
                self._now = until
        finally:
            self._running = False
        return executed
