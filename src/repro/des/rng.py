"""Named, independent random streams.

Paired comparison across scheduling strategies requires the *workload* to be
bit-identical between runs while scheduling decisions differ.  We derive one
``numpy.random.Generator`` per named concern (topology wiring, link noise,
publish times, message attributes, subscription filters, ...) from a single
root seed via ``SeedSequence`` spawning keyed on the stream name, so adding a
new stream never perturbs existing ones.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """A lazily populated registry of named independent generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The same ``(seed, name)`` pair always yields an identical stream,
        independent of creation order or of which other streams exist.
        """
        stream = self._streams.get(name)
        if stream is None:
            key = zlib.crc32(name.encode("utf-8"))
            ss = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            stream = np.random.default_rng(ss)
            self._streams[name] = stream
        return stream

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> list[str]:
        """Names of streams created so far (sorted for reproducible dumps)."""
        return sorted(self._streams)

    def fork(self, salt: int) -> "RngStreams":
        """A fresh registry whose root seed mixes in ``salt``.

        Used by multi-seed replication: ``streams.fork(k)`` gives replica
        ``k`` an unrelated but reproducible universe.
        """
        mixed = (self._seed * 1_000_003 + salt) % (2**63)
        return RngStreams(mixed)
