"""Event records for the simulation kernel."""

from __future__ import annotations

from typing import Callable


class Event:
    """A scheduled callback.

    Ordering is ``(time, priority, seq)``: earlier simulated time first,
    then lower ``priority`` value, then insertion order — which makes event
    execution fully deterministic for a fixed schedule, a prerequisite for
    seed-reproducible experiments.

    A ``__slots__`` record compared as a plain tuple: the kernel allocates
    one per scheduled callback and the heap compares them constantly, so
    dataclass machinery (generated ``__init__`` with defaults-processing,
    per-field comparison methods, an instance ``__dict__``) is measurable
    overhead at paper-scale event counts.
    """

    __slots__ = (
        "time", "priority", "seq", "action", "label", "cancelled", "done",
        "kind", "payload",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[[], None],
        label: str = "",
        cancelled: bool = False,
        kind: str = "",
        payload: object = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = cancelled
        self.done = False  # set by the kernel once the action has run
        # Typed-event metadata: ``kind`` names the pipeline stage the
        # action performs ("" = opaque) and ``payload`` carries its
        # operands.  The action stays the executable — kind/payload exist
        # so the fused engine's window lookahead can *inspect* pending
        # events (batch-match "process" events ahead of time) without
        # executing them.  Opaque events are automatic barriers: the
        # lookahead cannot see through them, so dynamics/churn lambdas
        # need no special casing to stay correct.
        self.kind = kind
        self.payload = payload

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.priority, self.seq) == (other.time, other.priority, other.seq)

    __hash__ = None  # mutable record ordered by key; keep it unhashable

    def __getstate__(self) -> tuple:
        """Compact tuple state: ``__slots__`` classes get no free pickle
        support, and checkpoints serialize one Event per pending callback."""
        return (
            self.time, self.priority, self.seq, self.action, self.label,
            self.cancelled, self.done, self.kind, self.payload,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.time, self.priority, self.seq, self.action, self.label,
            self.cancelled, self.done, self.kind, self.payload,
        ) = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} p={self.priority} #{self.seq}{flag} {self.label!r}>"


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped, so cancel is O(1) and the heap never needs re-sifting.  The
    optional ``on_cancel`` callback lets the owning simulator keep its
    live-event counter exact without scanning the heap.
    """

    __slots__ = ("_event", "_on_cancel")

    def __init__(
        self, event: Event, on_cancel: Callable[[Event], None] | None = None
    ) -> None:
        self._event = event
        self._on_cancel = on_cancel

    def __getstate__(self) -> tuple:
        return (self._event, self._on_cancel)

    def __setstate__(self, state: tuple) -> None:
        self._event, self._on_cancel = state

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def done(self) -> bool:
        """Whether the event's action has already executed."""
        return self._event.done

    def cancel(self) -> bool:
        """Cancel the event; returns False if it was already cancelled
        **or already executed**.

        A stale handle (the action ran before the caller got around to
        cancelling) must not report success — callers use the return
        value to decide whether they prevented the action, and marking a
        done event cancelled would also misstate its state to later
        inspectors.  The event is left untouched in that case.
        """
        if self._event.cancelled or self._event.done:
            return False
        self._event.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel(self._event)
        return True
