"""Event records for the simulation kernel."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is ``(time, priority, seq)``: earlier simulated time first,
    then lower ``priority`` value, then insertion order — which makes event
    execution fully deterministic for a fixed schedule, a prerequisite for
    seed-reproducible experiments.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped, so cancel is O(1) and the heap never needs re-sifting.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event; returns False if it was already cancelled."""
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        return True
