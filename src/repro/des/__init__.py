"""Discrete-event simulation kernel.

A small, deterministic event-heap kernel purpose-built for the broker
overlay simulation:

* :class:`~repro.des.simulator.Simulator` — monotonic clock + binary-heap
  event queue with stable FIFO ordering among simultaneous events and O(1)
  cancellation.
* :class:`~repro.des.rng.RngStreams` — named, independent
  ``numpy.random.Generator`` streams derived from one root seed so that, for
  example, the workload stream is identical across strategy runs (paired
  comparison, exactly what the paper's figures need).
* :class:`~repro.des.trace.TraceRecorder` — optional structured tracing.
"""

from repro.des.event import Event, EventHandle
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.des.trace import TraceRecorder, TraceRecord

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "RngStreams",
    "TraceRecorder",
    "TraceRecord",
]
