"""Delay-requirement scenarios (Section 4.1) and the scale family.

* **PSD** — publisher-specified delay: each message carries an allowed
  delay (uniform in [10 s, 30 s] in the evaluation); subscriptions are
  unpriced and unbounded.  Objective: delivery rate (Eq. 1).
* **SSD** — subscriber-specified delay: each subscription carries an
  allowed delay from {10 s, 30 s, 60 s} priced {3, 2, 1}; messages are
  unbounded.  Objective: total earning (Eq. 2).
* **HYBRID** — both specify; the effective bound per (message,
  subscription) pair is the minimum.  The paper notes this extension is
  straightforward; it is implemented and tested here.

The **scale family** (:data:`SCALE_SCENARIOS`) stretches the paper's
topology to 100k–1M subscribers with *skewed filter popularity* (a
small shared pool of conjunctive filters drawn Zipf-style, as real
topic popularity distributes) and *high fanout* (thresholds in the
upper value range, so most messages reach most of the population) —
the workload shape the bounded-memory delivery log exists for.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.network.topology import LayeredMeshSpec, Topology
from repro.pubsub.filters import AndFilter, Predicate
from repro.pubsub.subscription import Subscription
from repro.workload.subscriptions import random_conjunctive_filter

#: SSD deadline -> price table from Section 6.1 (milliseconds -> price).
SSD_PRICE_BY_DEADLINE_MS: dict[float, float] = {
    10_000.0: 3.0,
    30_000.0: 2.0,
    60_000.0: 1.0,
}

#: PSD per-message allowed delay range (milliseconds).
PSD_DEADLINE_RANGE_MS: tuple[float, float] = (10_000.0, 30_000.0)


class Scenario(enum.Enum):
    """Who specifies the delay bound."""

    PSD = "psd"
    SSD = "ssd"
    HYBRID = "hybrid"

    @property
    def messages_carry_deadlines(self) -> bool:
        return self in (Scenario.PSD, Scenario.HYBRID)

    @property
    def subscriptions_carry_deadlines(self) -> bool:
        return self in (Scenario.SSD, Scenario.HYBRID)


def draw_message_deadline_ms(
    scenario: Scenario,
    rng: np.random.Generator,
    deadline_range_ms: tuple[float, float] = PSD_DEADLINE_RANGE_MS,
) -> float | None:
    """Per-message allowed delay, or None when publishers don't specify."""
    if not scenario.messages_carry_deadlines:
        return None
    lo, hi = deadline_range_ms
    if not 0.0 < lo <= hi:
        raise ValueError(f"bad deadline_range_ms {deadline_range_ms}")
    return float(rng.uniform(lo, hi))


def build_subscriptions(
    scenario: Scenario,
    rng: np.random.Generator,
    topology: Topology,
    attributes: Sequence[str] = ("A1", "A2"),
    value_range: tuple[float, float] = (0.0, 10.0),
    price_table: dict[float, float] | None = None,
) -> list[Subscription]:
    """One random subscription per subscriber attached to the topology.

    SSD/HYBRID subscriptions draw (deadline, price) uniformly from
    ``price_table`` (default: the paper's {10 s: 3, 30 s: 2, 60 s: 1}).
    """
    table = price_table if price_table is not None else SSD_PRICE_BY_DEADLINE_MS
    if scenario.subscriptions_carry_deadlines and not table:
        raise ValueError("price table must not be empty")
    deadlines = sorted(table)
    out: list[Subscription] = []
    for subscriber in sorted(topology.subscriber_brokers):
        filt = random_conjunctive_filter(rng, attributes, value_range)
        if scenario.subscriptions_carry_deadlines:
            dl = deadlines[int(rng.integers(0, len(deadlines)))]
            out.append(
                Subscription(
                    subscriber=subscriber,
                    filter=filt,
                    deadline_ms=dl,
                    price=table[dl],
                )
            )
        else:
            out.append(Subscription(subscriber=subscriber, filter=filt))
    return out


# --------------------------------------------------------------------- #
# Scale tier: 100k+-subscriber scenario family.
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class ScaleScenarioSpec:
    """One member of the scale family.

    ``filter_pool`` distinct conjunctive filters are shared by the whole
    population (dense interning territory for the vector matcher);
    popularity across the pool follows a Zipf law with exponent
    ``zipf_exponent``.  ``selectivity_range`` places every threshold in
    the upper value range, so per-predicate match probability — and with
    it the fanout the delivery log must absorb — stays high.
    Deadlines/prices follow the paper's SSD table, keeping scheduling
    and earning real at scale.
    """

    name: str
    subscribers: int
    filter_pool: int = 64
    zipf_exponent: float = 1.1
    selectivity_range: tuple[float, float] = (0.6, 0.95)
    attributes: tuple[str, ...] = ("A1", "A2")
    value_range: tuple[float, float] = (0.0, 10.0)

    def __post_init__(self) -> None:
        if self.subscribers < 1:
            raise ValueError("subscribers must be positive")
        if self.filter_pool < 1:
            raise ValueError("filter_pool must be positive")
        if self.zipf_exponent <= 0.0:
            raise ValueError("zipf_exponent must be positive")
        lo, hi = self.selectivity_range
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError(f"bad selectivity_range {self.selectivity_range}")

    @property
    def subscribers_per_edge_broker(self) -> int:
        """Per-edge population on the paper's mesh (the actual total is
        rounded up to a multiple of the edge-broker count)."""
        edges = LayeredMeshSpec().layer_sizes[-1]
        return max(1, -(-self.subscribers // edges))

    def topology_spec(self) -> LayeredMeshSpec:
        """The paper's layered mesh, stretched to this population."""
        return LayeredMeshSpec(
            subscribers_per_edge_broker=self.subscribers_per_edge_broker
        )


#: The scale family: smoke (CI-sized) through 1M subscribers.
SCALE_SCENARIOS: dict[str, ScaleScenarioSpec] = {
    "smoke": ScaleScenarioSpec(name="smoke", subscribers=8_000),
    "100k": ScaleScenarioSpec(name="100k", subscribers=100_000),
    "250k": ScaleScenarioSpec(name="250k", subscribers=250_000),
    "1m": ScaleScenarioSpec(name="1m", subscribers=1_000_000),
}


def build_scale_subscriptions(
    rng: np.random.Generator,
    topology: Topology,
    spec: ScaleScenarioSpec,
) -> list[Subscription]:
    """One subscription per attached subscriber, filters drawn from the
    spec's Zipf-skewed shared pool, SSD deadlines/prices.

    All random draws are vectorised (one ``choice`` and one ``integers``
    call for the whole population) — building 1M subscriptions must not
    cost 1M RNG round-trips.
    """
    lo, hi = spec.value_range
    s_lo, s_hi = spec.selectivity_range
    # The shared filter pool: per-attribute thresholds in the high-
    # selectivity band of the value range.
    pool_thresholds = lo + rng.uniform(
        s_lo, s_hi, size=(spec.filter_pool, len(spec.attributes))
    ) * (hi - lo)
    pool = [
        AndFilter([
            Predicate(attr, "<", float(pool_thresholds[k, j]))
            for j, attr in enumerate(spec.attributes)
        ])
        if len(spec.attributes) > 1
        else Predicate(spec.attributes[0], "<", float(pool_thresholds[k, 0]))
        for k in range(spec.filter_pool)
    ]
    weights = 1.0 / np.arange(1, spec.filter_pool + 1) ** spec.zipf_exponent
    weights /= weights.sum()

    names = sorted(topology.subscriber_brokers)
    picks = rng.choice(spec.filter_pool, size=len(names), p=weights)
    deadlines = sorted(SSD_PRICE_BY_DEADLINE_MS)
    dl_picks = rng.integers(0, len(deadlines), size=len(names))
    out: list[Subscription] = []
    for name, k, d in zip(names, picks.tolist(), dl_picks.tolist()):
        dl = deadlines[d]
        out.append(
            Subscription(
                subscriber=name,
                filter=pool[k],
                deadline_ms=dl,
                price=SSD_PRICE_BY_DEADLINE_MS[dl],
            )
        )
    return out
