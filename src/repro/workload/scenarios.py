"""Delay-requirement scenarios (Section 4.1).

* **PSD** — publisher-specified delay: each message carries an allowed
  delay (uniform in [10 s, 30 s] in the evaluation); subscriptions are
  unpriced and unbounded.  Objective: delivery rate (Eq. 1).
* **SSD** — subscriber-specified delay: each subscription carries an
  allowed delay from {10 s, 30 s, 60 s} priced {3, 2, 1}; messages are
  unbounded.  Objective: total earning (Eq. 2).
* **HYBRID** — both specify; the effective bound per (message,
  subscription) pair is the minimum.  The paper notes this extension is
  straightforward; it is implemented and tested here.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.network.topology import Topology
from repro.pubsub.subscription import Subscription
from repro.workload.subscriptions import random_conjunctive_filter

#: SSD deadline -> price table from Section 6.1 (milliseconds -> price).
SSD_PRICE_BY_DEADLINE_MS: dict[float, float] = {
    10_000.0: 3.0,
    30_000.0: 2.0,
    60_000.0: 1.0,
}

#: PSD per-message allowed delay range (milliseconds).
PSD_DEADLINE_RANGE_MS: tuple[float, float] = (10_000.0, 30_000.0)


class Scenario(enum.Enum):
    """Who specifies the delay bound."""

    PSD = "psd"
    SSD = "ssd"
    HYBRID = "hybrid"

    @property
    def messages_carry_deadlines(self) -> bool:
        return self in (Scenario.PSD, Scenario.HYBRID)

    @property
    def subscriptions_carry_deadlines(self) -> bool:
        return self in (Scenario.SSD, Scenario.HYBRID)


def draw_message_deadline_ms(
    scenario: Scenario,
    rng: np.random.Generator,
    deadline_range_ms: tuple[float, float] = PSD_DEADLINE_RANGE_MS,
) -> float | None:
    """Per-message allowed delay, or None when publishers don't specify."""
    if not scenario.messages_carry_deadlines:
        return None
    lo, hi = deadline_range_ms
    if not 0.0 < lo <= hi:
        raise ValueError(f"bad deadline_range_ms {deadline_range_ms}")
    return float(rng.uniform(lo, hi))


def build_subscriptions(
    scenario: Scenario,
    rng: np.random.Generator,
    topology: Topology,
    attributes: Sequence[str] = ("A1", "A2"),
    value_range: tuple[float, float] = (0.0, 10.0),
    price_table: dict[float, float] | None = None,
) -> list[Subscription]:
    """One random subscription per subscriber attached to the topology.

    SSD/HYBRID subscriptions draw (deadline, price) uniformly from
    ``price_table`` (default: the paper's {10 s: 3, 30 s: 2, 60 s: 1}).
    """
    table = price_table if price_table is not None else SSD_PRICE_BY_DEADLINE_MS
    if scenario.subscriptions_carry_deadlines and not table:
        raise ValueError("price table must not be empty")
    deadlines = sorted(table)
    out: list[Subscription] = []
    for subscriber in sorted(topology.subscriber_brokers):
        filt = random_conjunctive_filter(rng, attributes, value_range)
        if scenario.subscriptions_carry_deadlines:
            dl = deadlines[int(rng.integers(0, len(deadlines)))]
            out.append(
                Subscription(
                    subscriber=subscriber,
                    filter=filt,
                    deadline_ms=dl,
                    price=table[dl],
                )
            )
        else:
            out.append(Subscription(subscriber=subscriber, filter=filt))
    return out
