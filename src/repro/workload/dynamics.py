"""Scripted runtime dynamics: typed, timed interventions.

The paper's evaluation runs every experiment against a frozen world —
subscriptions installed before t=0, one constant publishing rate, link
distributions fixed for the whole test period.  A
:class:`ScenarioScript` breaks that freeze declaratively: it is an
ordered set of interventions, each a small frozen dataclass with a firing
time, compiled at build time into

* **rate segments** for the piecewise arrival process
  (:class:`RateBurst` — see
  :func:`repro.workload.generator.generate_publications_piecewise`), and
* **DES events** applied to the live system mid-run (everything else):
  :class:`LinkDegrade` / :class:`LinkRecover` rescale a link's true rate
  through the system's intervention API (monitors follow — pinned ORACLE
  caches invalidate, ESTIMATED estimators measure their way to the new
  rate), :class:`ChurnWave` unsubscribes/resubscribes batches of
  subscribers, and :class:`FlashCrowd` attaches a burst of new
  broad-filter subscribers.

An empty script compiles to a single rate segment and zero events, which
is byte-identical to the historic frozen-world run.  All randomness used
by interventions comes from the dedicated ``"dynamics"`` RNG stream, so
scripts never perturb the workload/topology/subscription draws of the
paired comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Callable, Sequence, Union

from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.workload.generator import RateSegment
from repro.workload.scenarios import SSD_PRICE_BY_DEADLINE_MS, Scenario
from repro.workload.subscriptions import random_conjunctive_filter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.topology import Topology
    from repro.pubsub.system import PubSubSystem


@dataclass(frozen=True, slots=True)
class RateBurst:
    """Multiply every publisher's rate by ``multiplier`` over a window.

    Overlapping bursts compose multiplicatively; a multiplier of 0
    silences publishers for the window (arrival phase freezes).
    """

    start_ms: float
    end_ms: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.start_ms < 0.0:
            raise ValueError(f"start_ms must be non-negative, got {self.start_ms}")
        if self.end_ms <= self.start_ms:
            raise ValueError(f"end_ms {self.end_ms} must be after start_ms {self.start_ms}")
        if self.multiplier < 0.0:
            raise ValueError(f"multiplier must be non-negative, got {self.multiplier}")


@dataclass(frozen=True, slots=True)
class LinkDegrade:
    """At ``at_ms``, slow link ``a–b`` down by ``factor`` (mean and std of
    the true per-KB rate scale by ``factor``; rates are ms/KB, so
    ``factor > 1`` degrades).  Relative to the build-time distribution,
    not the current one — repeated degrades don't compound."""

    at_ms: float
    a: str
    b: str
    factor: float

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")
        if self.factor <= 0.0:
            raise ValueError(f"factor must be positive, got {self.factor}")


@dataclass(frozen=True, slots=True)
class LinkRecover:
    """At ``at_ms``, restore link ``a–b`` to its build-time distribution."""

    at_ms: float
    a: str
    b: str

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")


@dataclass(frozen=True, slots=True)
class ChurnWave:
    """At ``at_ms``, ``leave`` random existing subscribers unsubscribe and
    ``join`` fresh random-filter subscribers subscribe (attached round-robin
    to the edge brokers that already host subscribers)."""

    at_ms: float
    leave: int = 0
    join: int = 0

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")
        if self.leave < 0 or self.join < 0:
            raise ValueError("leave/join must be non-negative")
        if self.leave == 0 and self.join == 0:
            raise ValueError("churn wave must move at least one subscriber")


@dataclass(frozen=True, slots=True)
class FlashCrowd:
    """At ``at_ms``, ``count`` new *broad-filter* (match-everything)
    subscribers arrive — at ``broker``, or spread round-robin over the
    subscriber-hosting edge brokers when ``broker`` is None."""

    at_ms: float
    count: int
    broker: str | None = None

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")


Intervention = Union[RateBurst, LinkDegrade, LinkRecover, ChurnWave, FlashCrowd]

#: Interventions applied as DES events (everything but rate shaping).
_TIMED_TYPES = (LinkDegrade, LinkRecover, ChurnWave, FlashCrowd)


@dataclass(frozen=True, slots=True)
class ScenarioScript:
    """A declarative, ordered set of runtime interventions.

    The default (empty) script reproduces the frozen world exactly: one
    rate segment, zero scheduled events.
    """

    interventions: tuple[Intervention, ...] = ()

    def __post_init__(self) -> None:
        for item in self.interventions:
            if not isinstance(item, (RateBurst, *_TIMED_TYPES)):
                raise TypeError(f"not an intervention: {item!r}")

    def __bool__(self) -> bool:
        return bool(self.interventions)

    @property
    def rate_bursts(self) -> tuple[RateBurst, ...]:
        return tuple(i for i in self.interventions if isinstance(i, RateBurst))

    @property
    def timed(self) -> tuple[Intervention, ...]:
        """Event-applied interventions, sorted by firing time (stable)."""
        return tuple(
            sorted(
                (i for i in self.interventions if isinstance(i, _TIMED_TYPES)),
                key=lambda i: i.at_ms,
            )
        )

    def rate_segments(self, base_rate_per_minute: float, duration_ms: float) -> list[RateSegment]:
        """Compile the bursts into contiguous segments over ``[0, duration)``.

        Burst windows clip to the duration; overlaps multiply.  With no
        bursts the result is the single homogeneous segment.
        """
        if duration_ms <= 0.0:
            raise ValueError("duration_ms must be positive")
        bursts = [b for b in self.rate_bursts if b.start_ms < duration_ms]
        if not bursts:
            return [RateSegment(0.0, duration_ms, base_rate_per_minute)]
        edges = {0.0, duration_ms}
        for b in bursts:
            edges.add(b.start_ms)
            edges.add(min(b.end_ms, duration_ms))
        cuts = sorted(edges)
        out = []
        for lo, hi in zip(cuts, cuts[1:]):
            rate = base_rate_per_minute
            for b in bursts:
                if b.start_ms <= lo and hi <= b.end_ms:
                    rate *= b.multiplier
            out.append(RateSegment(lo, hi, rate))
        return out


# ---------------------------------------------------------------------- #
# Applying a script to a live system.
# ---------------------------------------------------------------------- #
class DynamicsDriver:
    """Applies a script's timed interventions to a running system.

    One driver per run: it owns the ``"dynamics"`` RNG stream, the naming
    counter for dynamically created subscribers (``D1, D2, ...``) and the
    scenario-consistent subscription construction (SSD/HYBRID draws a
    (deadline, price) tier exactly like the static population does).
    """

    def __init__(
        self,
        system: "PubSubSystem",
        scenario: Scenario,
        attributes: Sequence[str] = ("A1", "A2"),
        value_range: tuple[float, float] = (0.0, 10.0),
        price_table: dict[float, float] | None = None,
    ) -> None:
        self.system = system
        self.scenario = scenario
        self.attributes = tuple(attributes)
        self.value_range = value_range
        self.price_table = dict(price_table or SSD_PRICE_BY_DEADLINE_MS)
        self._rng = system.streams.get("dynamics")
        # Plain int counter (not a generator expression) so a pending
        # driver pickles inside a checkpoint; emits D1, D2, ...
        self._name_counter = 0
        self.applied = 0

    # ------------------------------------------------------------------ #
    # Scheduling.
    # ------------------------------------------------------------------ #
    def schedule(self, script: ScenarioScript) -> int:
        """Schedule every timed intervention as a DES event; returns the
        count (0 for an empty script — nothing is touched)."""
        count = 0
        for item in script.timed:
            # partial of the bound method: interventions are frozen
            # dataclasses, so the scheduled event is fully picklable.
            self.system.sim.schedule_at(item.at_ms, partial(self.apply, item))
            count += 1
        return count

    def _next_name(self) -> str:
        self._name_counter += 1
        return f"D{self._name_counter}"

    # ------------------------------------------------------------------ #
    # Application.
    # ------------------------------------------------------------------ #
    def apply(self, item: Intervention) -> None:
        """Apply one intervention to the live system now."""
        if isinstance(item, LinkDegrade):
            self.system.degrade_link(item.a, item.b, item.factor)
        elif isinstance(item, LinkRecover):
            self.system.recover_link(item.a, item.b)
        elif isinstance(item, ChurnWave):
            self._churn(item)
        elif isinstance(item, FlashCrowd):
            self._flash_crowd(item)
        else:
            raise TypeError(f"not a timed intervention: {item!r}")
        self.applied += 1

    def _edge_brokers(self) -> list[str]:
        edges = sorted(set(self.system.topology.subscriber_brokers.values()))
        if not edges:
            raise ValueError("no subscriber-hosting edge brokers to attach to")
        return edges

    def _subscribe(self, name: str, broker: str, filt) -> None:
        system = self.system
        system.topology.attach_subscriber(name, broker)
        if self.scenario.subscriptions_carry_deadlines:
            deadlines = sorted(self.price_table)
            dl = deadlines[int(self._rng.integers(0, len(deadlines)))]
            sub = Subscription(name, filt, deadline_ms=dl, price=self.price_table[dl])
        else:
            sub = Subscription(name, filt)
        system.subscribe(sub)

    def _churn(self, wave: ChurnWave) -> None:
        system = self.system
        current = sorted(system.subscribers)
        leave = min(wave.leave, len(current))
        if leave:
            idx = self._rng.choice(len(current), size=leave, replace=False)
            for i in sorted(int(i) for i in idx):
                system.unsubscribe(current[i])
        if wave.join:
            edges = self._edge_brokers()
            for k in range(wave.join):
                filt = random_conjunctive_filter(self._rng, self.attributes, self.value_range)
                self._subscribe(self._next_name(), edges[k % len(edges)], filt)

    def _flash_crowd(self, crowd: FlashCrowd) -> None:
        lo, hi = self.value_range
        # Matches every message: attribute values are drawn strictly
        # inside the open range, so "< hi + span" can never exclude one.
        broad = Predicate(self.attributes[0], "<", hi + (hi - lo))
        edges = [crowd.broker] if crowd.broker is not None else self._edge_brokers()
        for k in range(crowd.count):
            self._subscribe(self._next_name(), edges[k % len(edges)], broad)


# ---------------------------------------------------------------------- #
# Preset scripts.
# ---------------------------------------------------------------------- #
def diurnal(topology: "Topology", duration_ms: float) -> ScenarioScript:
    """A day-shaped load curve: quiet start, midday double-rate peak,
    evening cool-down — four equal phases at 0.5x / 1x / 2x / 1x."""
    q = duration_ms / 4.0
    return ScenarioScript((
        RateBurst(0.0, q, 0.5),
        RateBurst(2.0 * q, 3.0 * q, 2.0),
    ))


def flash_crowd(topology: "Topology", duration_ms: float) -> ScenarioScript:
    """A breaking-news moment 30% in: 40 broad-filter subscribers arrive
    and publishers double their rate for the middle third; at 80% a
    20-subscriber churn wave (uniform over the whole population, crowd
    and regulars alike) thins the audience back down."""
    return ScenarioScript((
        FlashCrowd(at_ms=0.3 * duration_ms, count=40),
        RateBurst(0.3 * duration_ms, 0.6 * duration_ms, 2.0),
        ChurnWave(at_ms=0.8 * duration_ms, leave=20),
    ))


def degrade_worst_link(topology: "Topology", duration_ms: float) -> ScenarioScript:
    """Degrade the overlay's most load-bearing link 4x for the middle half
    of the run.  Min-mean-TR routing concentrates paths on the *fastest*
    link, so the lowest-mean link is where degradation hurts most."""
    a, b, _ = min(topology.links(), key=lambda t: t[2].mean)
    return ScenarioScript((
        LinkDegrade(at_ms=0.25 * duration_ms, a=a, b=b, factor=4.0),
        LinkRecover(at_ms=0.75 * duration_ms, a=a, b=b),
    ))


def churn_burst(topology: "Topology", duration_ms: float) -> ScenarioScript:
    """The bench scenario: a 3x rate burst through the middle half with a
    churn wave (30 leave, 30 join) at its onset and another at its end."""
    return ScenarioScript((
        RateBurst(0.25 * duration_ms, 0.75 * duration_ms, 3.0),
        ChurnWave(at_ms=0.25 * duration_ms, leave=30, join=30),
        ChurnWave(at_ms=0.75 * duration_ms, leave=30, join=30),
    ))


#: Named preset builders: ``(topology, duration_ms) -> ScenarioScript``.
PRESETS: dict[str, Callable[["Topology", float], ScenarioScript]] = {
    "diurnal": diurnal,
    "flash-crowd": flash_crowd,
    "degrade-worst-link": degrade_worst_link,
    "churn-burst": churn_burst,
}
