"""Scripted runtime dynamics: typed, timed interventions.

The paper's evaluation runs every experiment against a frozen world —
subscriptions installed before t=0, one constant publishing rate, link
distributions fixed for the whole test period.  A
:class:`ScenarioScript` breaks that freeze declaratively: it is an
ordered set of interventions, each a small frozen dataclass with a firing
time, compiled at build time into

* **rate segments** for the piecewise arrival process
  (:class:`RateBurst` — see
  :func:`repro.workload.generator.generate_publications_piecewise`), and
* **DES events** applied to the live system mid-run (everything else):
  :class:`LinkDegrade` / :class:`LinkRecover` rescale a link's true rate
  through the system's intervention API (monitors follow — pinned ORACLE
  caches invalidate, ESTIMATED estimators measure their way to the new
  rate), :class:`ChurnWave` unsubscribes/resubscribes batches of
  subscribers, and :class:`FlashCrowd` attaches a burst of new
  broad-filter subscribers.

An empty script compiles to a single rate segment and zero events, which
is byte-identical to the historic frozen-world run.  All randomness used
by interventions comes from the dedicated ``"dynamics"`` RNG stream, so
scripts never perturb the workload/topology/subscription draws of the
paired comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Callable, Sequence, Union

from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.workload.generator import RateSegment
from repro.workload.scenarios import SSD_PRICE_BY_DEADLINE_MS, Scenario
from repro.workload.subscriptions import random_conjunctive_filter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.topology import Topology
    from repro.pubsub.system import PubSubSystem


@dataclass(frozen=True, slots=True)
class RateBurst:
    """Multiply every publisher's rate by ``multiplier`` over a window.

    Overlapping bursts compose multiplicatively; a multiplier of 0
    silences publishers for the window (arrival phase freezes).
    """

    start_ms: float
    end_ms: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.start_ms < 0.0:
            raise ValueError(f"start_ms must be non-negative, got {self.start_ms}")
        if self.end_ms <= self.start_ms:
            raise ValueError(f"end_ms {self.end_ms} must be after start_ms {self.start_ms}")
        if self.multiplier < 0.0:
            raise ValueError(f"multiplier must be non-negative, got {self.multiplier}")


@dataclass(frozen=True, slots=True)
class LinkDegrade:
    """At ``at_ms``, slow link ``a–b`` down by ``factor`` (mean and std of
    the true per-KB rate scale by ``factor``; rates are ms/KB, so
    ``factor > 1`` degrades).  Relative to the build-time distribution,
    not the current one — repeated degrades don't compound."""

    at_ms: float
    a: str
    b: str
    factor: float

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")
        if self.factor <= 0.0:
            raise ValueError(f"factor must be positive, got {self.factor}")


@dataclass(frozen=True, slots=True)
class LinkRecover:
    """At ``at_ms``, restore link ``a–b`` to its build-time distribution."""

    at_ms: float
    a: str
    b: str

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")


@dataclass(frozen=True, slots=True)
class ChurnWave:
    """At ``at_ms``, ``leave`` random existing subscribers unsubscribe and
    ``join`` fresh random-filter subscribers subscribe (attached round-robin
    to the edge brokers that already host subscribers)."""

    at_ms: float
    leave: int = 0
    join: int = 0

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")
        if self.leave < 0 or self.join < 0:
            raise ValueError("leave/join must be non-negative")
        if self.leave == 0 and self.join == 0:
            raise ValueError("churn wave must move at least one subscriber")


@dataclass(frozen=True, slots=True)
class FlashCrowd:
    """At ``at_ms``, ``count`` new *broad-filter* (match-everything)
    subscribers arrive — at ``broker``, or spread round-robin over the
    subscriber-hosting edge brokers when ``broker`` is None."""

    at_ms: float
    count: int
    broker: str | None = None

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")


@dataclass(frozen=True, slots=True)
class LinkFailure:
    """At ``at_ms``, hard-down link ``a–b`` (both directions): no new
    transmission may start.  Queued traffic is retried with bounded
    backoff and dead-lettered past the per-entry timeout — a *failure*,
    not the :class:`LinkDegrade` slow-down."""

    at_ms: float
    a: str
    b: str

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")


@dataclass(frozen=True, slots=True)
class LinkRestore:
    """At ``at_ms``, undo a :class:`LinkFailure` on link ``a–b``."""

    at_ms: float
    a: str
    b: str

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")


@dataclass(frozen=True, slots=True)
class LinkPartition:
    """At ``at_ms``, fail every link with exactly one endpoint in
    ``group`` — a network partition isolating the group — healing at
    ``heal_ms`` (None = never)."""

    at_ms: float
    group: tuple[str, ...]
    heal_ms: float | None = None

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")
        if not self.group:
            raise ValueError("partition group must name at least one broker")
        if self.heal_ms is not None and self.heal_ms <= self.at_ms:
            raise ValueError(f"heal_ms {self.heal_ms} must be after at_ms {self.at_ms}")


@dataclass(frozen=True, slots=True)
class BrokerOutage:
    """At ``at_ms``, take ``broker`` offline: all adjacent link directions
    go down and publications sourced there are dropped (and accounted in
    the dead-letter ledger)."""

    at_ms: float
    broker: str

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")


@dataclass(frozen=True, slots=True)
class BrokerRecover:
    """At ``at_ms``, bring ``broker`` back online."""

    at_ms: float
    broker: str

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")


@dataclass(frozen=True, slots=True)
class CascadeOutage:
    """At ``at_ms``, ``origin`` goes down and the failure spreads along
    topology edges in waves every ``step_ms``: each still-up neighbour of
    the previous wave fails with probability
    ``spread_prob * decay**(depth-1)`` (the propagation kernel), up to
    ``max_depth`` waves.  Brokers recover ``recover_after_ms`` after
    their own failure (None = stay down).  All draws come from the
    ``"dynamics"`` RNG stream in sorted-neighbour order, so a cascade is
    reproducible and identical across the strategies of a paired sweep.
    """

    at_ms: float
    origin: str
    spread_prob: float = 0.6
    decay: float = 0.5
    max_depth: int = 3
    step_ms: float = 5_000.0
    recover_after_ms: float | None = None

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be non-negative, got {self.at_ms}")
        if not 0.0 <= self.spread_prob <= 1.0:
            raise ValueError(f"spread_prob must be in [0, 1], got {self.spread_prob}")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")
        if self.max_depth < 0:
            raise ValueError(f"max_depth must be non-negative, got {self.max_depth}")
        if self.step_ms <= 0.0:
            raise ValueError(f"step_ms must be positive, got {self.step_ms}")
        if self.recover_after_ms is not None and self.recover_after_ms <= 0.0:
            raise ValueError("recover_after_ms must be positive (or None)")


Intervention = Union[
    RateBurst, LinkDegrade, LinkRecover, ChurnWave, FlashCrowd,
    LinkFailure, LinkRestore, LinkPartition, BrokerOutage, BrokerRecover,
    CascadeOutage,
]

#: Interventions applied as DES events (everything but rate shaping).
_TIMED_TYPES = (
    LinkDegrade, LinkRecover, ChurnWave, FlashCrowd,
    LinkFailure, LinkRestore, LinkPartition, BrokerOutage, BrokerRecover,
    CascadeOutage,
)

#: Interventions that can down a link or broker (used by callers that
#: need to know whether a script exercises the fault layer at all).
FAULT_TYPES = (LinkFailure, LinkPartition, BrokerOutage, CascadeOutage)


@dataclass(frozen=True, slots=True)
class ScenarioScript:
    """A declarative, ordered set of runtime interventions.

    The default (empty) script reproduces the frozen world exactly: one
    rate segment, zero scheduled events.
    """

    interventions: tuple[Intervention, ...] = ()

    def __post_init__(self) -> None:
        for item in self.interventions:
            if not isinstance(item, (RateBurst, *_TIMED_TYPES)):
                raise TypeError(f"not an intervention: {item!r}")

    def __bool__(self) -> bool:
        return bool(self.interventions)

    @property
    def rate_bursts(self) -> tuple[RateBurst, ...]:
        return tuple(i for i in self.interventions if isinstance(i, RateBurst))

    @property
    def timed(self) -> tuple[Intervention, ...]:
        """Event-applied interventions, sorted by firing time (stable)."""
        return tuple(
            sorted(
                (i for i in self.interventions if isinstance(i, _TIMED_TYPES)),
                key=lambda i: i.at_ms,
            )
        )

    def rate_segments(self, base_rate_per_minute: float, duration_ms: float) -> list[RateSegment]:
        """Compile the bursts into contiguous segments over ``[0, duration)``.

        Burst windows clip to the duration; overlaps multiply.  With no
        bursts the result is the single homogeneous segment.
        """
        if duration_ms <= 0.0:
            raise ValueError("duration_ms must be positive")
        bursts = [b for b in self.rate_bursts if b.start_ms < duration_ms]
        if not bursts:
            return [RateSegment(0.0, duration_ms, base_rate_per_minute)]
        edges = {0.0, duration_ms}
        for b in bursts:
            edges.add(b.start_ms)
            edges.add(min(b.end_ms, duration_ms))
        cuts = sorted(edges)
        out = []
        for lo, hi in zip(cuts, cuts[1:]):
            rate = base_rate_per_minute
            for b in bursts:
                if b.start_ms <= lo and hi <= b.end_ms:
                    rate *= b.multiplier
            out.append(RateSegment(lo, hi, rate))
        return out


# ---------------------------------------------------------------------- #
# Applying a script to a live system.
# ---------------------------------------------------------------------- #
class DynamicsDriver:
    """Applies a script's timed interventions to a running system.

    One driver per run: it owns the ``"dynamics"`` RNG stream, the naming
    counter for dynamically created subscribers (``D1, D2, ...``) and the
    scenario-consistent subscription construction (SSD/HYBRID draws a
    (deadline, price) tier exactly like the static population does).
    """

    def __init__(
        self,
        system: "PubSubSystem",
        scenario: Scenario,
        attributes: Sequence[str] = ("A1", "A2"),
        value_range: tuple[float, float] = (0.0, 10.0),
        price_table: dict[float, float] | None = None,
    ) -> None:
        self.system = system
        self.scenario = scenario
        self.attributes = tuple(attributes)
        self.value_range = value_range
        self.price_table = dict(price_table or SSD_PRICE_BY_DEADLINE_MS)
        self._rng = system.streams.get("dynamics")
        # Plain int counter (not a generator expression) so a pending
        # driver pickles inside a checkpoint; emits D1, D2, ...
        self._name_counter = 0
        self.applied = 0

    # ------------------------------------------------------------------ #
    # Scheduling.
    # ------------------------------------------------------------------ #
    def schedule(self, script: ScenarioScript) -> int:
        """Schedule every timed intervention as a DES event; returns the
        count (0 for an empty script — nothing is touched)."""
        count = 0
        for item in script.timed:
            # partial of the bound method: interventions are frozen
            # dataclasses, so the scheduled event is fully picklable.
            self.system.sim.schedule_at(item.at_ms, partial(self.apply, item))
            count += 1
        return count

    def _next_name(self) -> str:
        self._name_counter += 1
        return f"D{self._name_counter}"

    # ------------------------------------------------------------------ #
    # Application.
    # ------------------------------------------------------------------ #
    def apply(self, item: Intervention) -> None:
        """Apply one intervention to the live system now."""
        if isinstance(item, LinkDegrade):
            self.system.degrade_link(item.a, item.b, item.factor)
        elif isinstance(item, LinkRecover):
            self.system.recover_link(item.a, item.b)
        elif isinstance(item, ChurnWave):
            self._churn(item)
        elif isinstance(item, FlashCrowd):
            self._flash_crowd(item)
        elif isinstance(item, LinkFailure):
            self.system.fail_link(item.a, item.b)
        elif isinstance(item, LinkRestore):
            self.system.restore_link_up(item.a, item.b)
        elif isinstance(item, LinkPartition):
            self.system.partition(frozenset(item.group))
            if item.heal_ms is not None:
                self.system.sim.schedule_at(
                    item.heal_ms, partial(self._heal, item.group)
                )
        elif isinstance(item, BrokerOutage):
            self.system.fail_broker(item.broker)
        elif isinstance(item, BrokerRecover):
            self.system.recover_broker(item.broker)
        elif isinstance(item, CascadeOutage):
            self._cascade_start(item)
        else:
            raise TypeError(f"not a timed intervention: {item!r}")
        self.applied += 1

    def _edge_brokers(self) -> list[str]:
        edges = sorted(set(self.system.topology.subscriber_brokers.values()))
        if not edges:
            raise ValueError("no subscriber-hosting edge brokers to attach to")
        return edges

    def _subscribe(self, name: str, broker: str, filt) -> None:
        system = self.system
        system.topology.attach_subscriber(name, broker)
        if self.scenario.subscriptions_carry_deadlines:
            deadlines = sorted(self.price_table)
            dl = deadlines[int(self._rng.integers(0, len(deadlines)))]
            sub = Subscription(name, filt, deadline_ms=dl, price=self.price_table[dl])
        else:
            sub = Subscription(name, filt)
        system.subscribe(sub)

    def _churn(self, wave: ChurnWave) -> None:
        system = self.system
        current = sorted(system.subscribers)
        leave = min(wave.leave, len(current))
        if leave:
            idx = self._rng.choice(len(current), size=leave, replace=False)
            for i in sorted(int(i) for i in idx):
                system.unsubscribe(current[i])
        if wave.join:
            edges = self._edge_brokers()
            for k in range(wave.join):
                filt = random_conjunctive_filter(self._rng, self.attributes, self.value_range)
                self._subscribe(self._next_name(), edges[k % len(edges)], filt)

    # ------------------------------------------------------------------ #
    # Fault interventions.
    # ------------------------------------------------------------------ #
    def _heal(self, group: tuple[str, ...]) -> None:
        self.system.heal_partition(frozenset(group))

    def _fail_with_recovery(self, item: CascadeOutage, broker: str) -> None:
        self.system.fail_broker(broker)
        if item.recover_after_ms is not None:
            self.system.sim.schedule(
                item.recover_after_ms,
                partial(self.system.recover_broker, broker),
            )

    def _cascade_start(self, item: CascadeOutage) -> None:
        self._fail_with_recovery(item, item.origin)
        if item.max_depth >= 1:
            self.system.sim.schedule(
                item.step_ms, partial(self._cascade_wave, item, (item.origin,), 1)
            )

    def _cascade_wave(
        self, item: CascadeOutage, frontier: tuple[str, ...], depth: int
    ) -> None:
        """One propagation wave: each still-up neighbour of the frontier
        fails with the depth-attenuated kernel probability.  Candidates
        are visited in sorted order with one RNG draw each, keeping the
        cascade deterministic under a fixed seed."""
        system = self.system
        down = system.down_brokers
        candidates = sorted(
            {n for b in frontier for n in system.brokers[b].queues} - down
        )
        p = item.spread_prob * item.decay ** (depth - 1)
        next_frontier = tuple(c for c in candidates if self._rng.random() < p)
        for broker in next_frontier:
            self._fail_with_recovery(item, broker)
        if next_frontier and depth < item.max_depth:
            system.sim.schedule(
                item.step_ms, partial(self._cascade_wave, item, next_frontier, depth + 1)
            )

    def _flash_crowd(self, crowd: FlashCrowd) -> None:
        lo, hi = self.value_range
        # Matches every message: attribute values are drawn strictly
        # inside the open range, so "< hi + span" can never exclude one.
        broad = Predicate(self.attributes[0], "<", hi + (hi - lo))
        edges = [crowd.broker] if crowd.broker is not None else self._edge_brokers()
        for k in range(crowd.count):
            self._subscribe(self._next_name(), edges[k % len(edges)], broad)


# ---------------------------------------------------------------------- #
# Preset scripts.
# ---------------------------------------------------------------------- #
def diurnal(topology: "Topology", duration_ms: float) -> ScenarioScript:
    """A day-shaped load curve: quiet start, midday double-rate peak,
    evening cool-down — four equal phases at 0.5x / 1x / 2x / 1x."""
    q = duration_ms / 4.0
    return ScenarioScript((
        RateBurst(0.0, q, 0.5),
        RateBurst(2.0 * q, 3.0 * q, 2.0),
    ))


def flash_crowd(topology: "Topology", duration_ms: float) -> ScenarioScript:
    """A breaking-news moment 30% in: 40 broad-filter subscribers arrive
    and publishers double their rate for the middle third; at 80% a
    20-subscriber churn wave (uniform over the whole population, crowd
    and regulars alike) thins the audience back down."""
    return ScenarioScript((
        FlashCrowd(at_ms=0.3 * duration_ms, count=40),
        RateBurst(0.3 * duration_ms, 0.6 * duration_ms, 2.0),
        ChurnWave(at_ms=0.8 * duration_ms, leave=20),
    ))


def degrade_worst_link(topology: "Topology", duration_ms: float) -> ScenarioScript:
    """Degrade the overlay's most load-bearing link 4x for the middle half
    of the run.  Min-mean-TR routing concentrates paths on the *fastest*
    link, so the lowest-mean link is where degradation hurts most."""
    a, b, _ = min(topology.links(), key=lambda t: t[2].mean)
    return ScenarioScript((
        LinkDegrade(at_ms=0.25 * duration_ms, a=a, b=b, factor=4.0),
        LinkRecover(at_ms=0.75 * duration_ms, a=a, b=b),
    ))


def churn_burst(topology: "Topology", duration_ms: float) -> ScenarioScript:
    """The bench scenario: a 3x rate burst through the middle half with a
    churn wave (30 leave, 30 join) at its onset and another at its end."""
    return ScenarioScript((
        RateBurst(0.25 * duration_ms, 0.75 * duration_ms, 3.0),
        ChurnWave(at_ms=0.25 * duration_ms, leave=30, join=30),
        ChurnWave(at_ms=0.75 * duration_ms, leave=30, join=30),
    ))


def _busiest_edge_broker(topology: "Topology") -> str:
    """The broker hosting the most subscribers (ties break by name) —
    where downing something hurts the most deliveries."""
    hosts = sorted(topology.subscriber_brokers.values())
    if not hosts:
        raise ValueError("topology hosts no subscribers")
    counts: dict[str, int] = {}
    for h in hosts:
        counts[h] = counts.get(h, 0) + 1
    return max(counts, key=lambda h: (counts[h], h))


def link_blackout(topology: "Topology", duration_ms: float) -> ScenarioScript:
    """Hard-down the overlay's most load-bearing link for the middle third
    of the run: traffic routed over it backs up, retries, and past the
    dead-letter timeout starts dropping — the failure analogue of
    :func:`degrade_worst_link`."""
    a, b, _ = min(topology.links(), key=lambda t: t[2].mean)
    return ScenarioScript((
        LinkFailure(at_ms=0.3 * duration_ms, a=a, b=b),
        LinkRestore(at_ms=0.6 * duration_ms, a=a, b=b),
    ))


def broker_outage(topology: "Topology", duration_ms: float) -> ScenarioScript:
    """Take the busiest subscriber-hosting broker offline for a quarter of
    the run; its local audience goes dark and upstream queues back up."""
    broker = _busiest_edge_broker(topology)
    return ScenarioScript((
        BrokerOutage(at_ms=0.3 * duration_ms, broker=broker),
        BrokerRecover(at_ms=0.55 * duration_ms, broker=broker),
    ))


def partition_heal(topology: "Topology", duration_ms: float) -> ScenarioScript:
    """Partition the busiest subscriber-hosting broker away from the rest
    of the overlay, healing at 70% of the run."""
    broker = _busiest_edge_broker(topology)
    return ScenarioScript((
        LinkPartition(
            at_ms=0.3 * duration_ms, group=(broker,), heal_ms=0.7 * duration_ms
        ),
    ))


def cascade(topology: "Topology", duration_ms: float) -> ScenarioScript:
    """A correlated outage spreading from a publisher-hosting broker: two
    attenuated waves along topology edges, each victim recovering 20% of
    the run after its own failure."""
    origin = sorted(set(topology.publisher_brokers.values()))[0]
    return ScenarioScript((
        CascadeOutage(
            at_ms=0.3 * duration_ms,
            origin=origin,
            spread_prob=0.6,
            decay=0.5,
            max_depth=2,
            step_ms=max(0.05 * duration_ms, 1.0),
            recover_after_ms=0.2 * duration_ms,
        ),
    ))


#: Named preset builders: ``(topology, duration_ms) -> ScenarioScript``.
PRESETS: dict[str, Callable[["Topology", float], ScenarioScript]] = {
    "diurnal": diurnal,
    "flash-crowd": flash_crowd,
    "degrade-worst-link": degrade_worst_link,
    "churn-burst": churn_burst,
    "link-blackout": link_blackout,
    "broker-outage": broker_outage,
    "partition-heal": partition_heal,
    "cascade": cascade,
}
