"""Workload generation: the evaluation's publishers and subscribers.

Section 6.1 of the paper:

* message headers ``{A1=x1, A2=x2}`` with values uniform in (0, 10);
* subscription filters ``A1 < x1 ∧ A2 < x2`` with thresholds uniform in
  (0, 10) — average selectivity (1/2)² = 25 %;
* PSD: per-message allowed delay uniform in [10 s, 30 s];
* SSD: per-subscription allowed delay from {10 s, 30 s, 60 s} with prices
  {3, 2, 1};
* each publisher publishes at a configured average rate (messages/minute)
  for a 2-hour test period; messages are 50 KB.
"""

from repro.workload.dynamics import (
    PRESETS,
    ChurnWave,
    DynamicsDriver,
    FlashCrowd,
    LinkDegrade,
    LinkRecover,
    RateBurst,
    ScenarioScript,
)
from repro.workload.generator import (
    ArrivalProcess,
    Publication,
    RateSegment,
    generate_publications,
    generate_publications_piecewise,
)
from repro.workload.scenarios import (
    SSD_PRICE_BY_DEADLINE_MS,
    Scenario,
    build_subscriptions,
    draw_message_deadline_ms,
)
from repro.workload.subscriptions import random_conjunctive_filter

__all__ = [
    "Publication",
    "ArrivalProcess",
    "RateSegment",
    "generate_publications",
    "generate_publications_piecewise",
    "ScenarioScript",
    "RateBurst",
    "LinkDegrade",
    "LinkRecover",
    "ChurnWave",
    "FlashCrowd",
    "DynamicsDriver",
    "PRESETS",
    "Scenario",
    "build_subscriptions",
    "draw_message_deadline_ms",
    "random_conjunctive_filter",
    "SSD_PRICE_BY_DEADLINE_MS",
]
