"""Publication schedules.

The paper says each publisher "continuously publishes messages at a
certain rate", quantified as the average number of messages per minute.
Three arrival processes are provided; **Poisson** is the default (matches
"average rate" semantics and is the standard open-loop workload model),
with deterministic and jittered-uniform alternatives for ablations.

The core arrival process is **piecewise-rate**: the publication window is
covered by segments, each with its own per-publisher rate, and gaps are
drawn at the rate of the segment the publisher currently sits in.  A gap
that crosses a segment boundary carries its residual *phase* (the drawn
gap expressed in periods of the segment it was drawn in) into the next
segment, rescaled by that segment's period — the classic time-rescaling
construction of an inhomogeneous Poisson process, applied uniformly to
all three gap distributions.  The homogeneous workload of the paper is
the one-segment special case and is **byte-identical** to the historic
homogeneous generator: with a single segment no boundary is ever crossed,
so the draw expressions (and hence the RNG stream) are exactly the ones
the old code used.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.workload.scenarios import Scenario, draw_message_deadline_ms
from repro.workload.subscriptions import random_attributes


class ArrivalProcess(enum.Enum):
    """How inter-publication gaps are drawn."""

    POISSON = "poisson"  # exponential gaps
    FIXED = "fixed"  # exact period, random initial phase
    UNIFORM = "uniform"  # gaps uniform in [0.5, 1.5] * period


@dataclass(frozen=True, slots=True)
class Publication:
    """One scheduled publish action."""

    time_ms: float
    publisher: str
    attributes: Mapping[str, float]
    size_kb: float
    deadline_ms: float | None


@dataclass(frozen=True, slots=True)
class RateSegment:
    """One constant-rate stretch of the publication window.

    ``end_ms`` is exclusive; a rate of 0 silences publishers for the whole
    segment (arrival phase freezes and resumes when the rate does).
    """

    start_ms: float
    end_ms: float
    rate_per_minute: float

    def __post_init__(self) -> None:
        if self.start_ms < 0.0:
            raise ValueError(f"segment start must be non-negative, got {self.start_ms}")
        if self.end_ms <= self.start_ms:
            raise ValueError(
                f"segment end {self.end_ms} must be after start {self.start_ms}"
            )
        if self.rate_per_minute < 0.0:
            raise ValueError("rate_per_minute must be non-negative")

    @property
    def period_ms(self) -> float:
        """Mean inter-arrival time in this segment (``inf`` when silent)."""
        if self.rate_per_minute == 0.0:
            return math.inf
        return 60_000.0 / self.rate_per_minute


def validate_segments(segments: Sequence[RateSegment], duration_ms: float) -> None:
    """Segments must tile ``[0, duration_ms)`` contiguously, in order."""
    if not segments:
        raise ValueError("need at least one rate segment")
    if segments[0].start_ms != 0.0:
        raise ValueError(f"first segment must start at 0, got {segments[0].start_ms}")
    for prev, cur in zip(segments, segments[1:]):
        if cur.start_ms != prev.end_ms:
            raise ValueError(
                f"segments must be contiguous: {prev.end_ms} then {cur.start_ms}"
            )
    if segments[-1].end_ms < duration_ms:
        raise ValueError(
            f"segments end at {segments[-1].end_ms} before duration {duration_ms}"
        )


def generate_publications(
    rng: np.random.Generator,
    publishers: Sequence[str],
    rate_per_minute: float,
    duration_ms: float,
    scenario: Scenario,
    size_kb: float = 50.0,
    arrival: ArrivalProcess = ArrivalProcess.POISSON,
    attributes: Sequence[str] = ("A1", "A2"),
    value_range: tuple[float, float] = (0.0, 10.0),
    deadline_range_ms: tuple[float, float] = (10_000.0, 30_000.0),
) -> list[Publication]:
    """All publications in ``[0, duration_ms)``, time-sorted.

    ``rate_per_minute`` is per publisher (the paper's "publishing rate").
    A rate of 0 yields an empty schedule (the figures' leftmost points).
    This is the homogeneous one-segment case of
    :func:`generate_publications_piecewise`.
    """
    if rate_per_minute < 0.0:
        raise ValueError("rate_per_minute must be non-negative")
    if duration_ms <= 0.0:
        raise ValueError("duration_ms must be positive")
    if rate_per_minute == 0.0 or not publishers:
        if size_kb <= 0.0:
            raise ValueError("size_kb must be positive")
        return []
    return generate_publications_piecewise(
        rng,
        publishers,
        [RateSegment(0.0, duration_ms, rate_per_minute)],
        duration_ms,
        scenario,
        size_kb=size_kb,
        arrival=arrival,
        attributes=attributes,
        value_range=value_range,
        deadline_range_ms=deadline_range_ms,
    )


def generate_publications_piecewise(
    rng: np.random.Generator,
    publishers: Sequence[str],
    segments: Sequence[RateSegment],
    duration_ms: float,
    scenario: Scenario,
    size_kb: float = 50.0,
    arrival: ArrivalProcess = ArrivalProcess.POISSON,
    attributes: Sequence[str] = ("A1", "A2"),
    value_range: tuple[float, float] = (0.0, 10.0),
    deadline_range_ms: tuple[float, float] = (10_000.0, 30_000.0),
) -> list[Publication]:
    """All publications of a piecewise-rate process in ``[0, duration_ms)``.

    With one segment this is bit-for-bit the homogeneous generator: the
    gap draws use the same expressions at the segment's period, and no
    boundary crossing ever rescales a gap.
    """
    if duration_ms <= 0.0:
        raise ValueError("duration_ms must be positive")
    if size_kb <= 0.0:
        raise ValueError("size_kb must be positive")
    validate_segments(segments, duration_ms)
    if not publishers or all(s.rate_per_minute == 0.0 for s in segments):
        return []

    out: list[Publication] = []
    for publisher in publishers:
        t, seg = _advance(rng, 0.0, 0, segments, arrival, first=True)
        while t < duration_ms:
            out.append(
                Publication(
                    time_ms=t,
                    publisher=publisher,
                    attributes=random_attributes(rng, attributes, value_range),
                    size_kb=size_kb,
                    deadline_ms=draw_message_deadline_ms(scenario, rng, deadline_range_ms),
                )
            )
            t, seg = _advance(rng, t, seg, segments, arrival, first=False)
    out.sort(key=lambda p: (p.time_ms, p.publisher))
    return out


def _advance(
    rng: np.random.Generator,
    t: float,
    seg: int,
    segments: Sequence[RateSegment],
    arrival: ArrivalProcess,
    first: bool,
) -> tuple[float, int]:
    """Next arrival time from ``t`` (inside segment ``seg``) onwards.

    Draws one gap at the current segment's period, then walks boundaries
    carrying the unconsumed phase (gap / period, unitless) into each later
    segment.  Silent (rate-0) segments pass the phase through untouched.
    Returns ``(inf, last_seg)`` once the phase cannot complete before the
    final segment ends.
    """
    period = segments[seg].period_ms
    draw = _first_arrival if first else _gap
    if math.isinf(period):
        # Silent segment: draw the gap in phase units (same RNG
        # consumption as a period-scaled draw) and spend it later.
        phase = draw(rng, 1.0, arrival)
        target = math.inf
    else:
        # Finite rate: draw in milliseconds — the exact homogeneous
        # expression, so the one-segment case never rescales.
        target = t + draw(rng, period, arrival)
        if target < segments[seg].end_ms or seg + 1 == len(segments):
            return target, seg
        phase = (target - segments[seg].end_ms) / period
    while seg + 1 < len(segments):
        seg += 1
        period = segments[seg].period_ms
        if math.isinf(period):
            continue
        target = segments[seg].start_ms + phase * period
        if target < segments[seg].end_ms or seg + 1 == len(segments):
            return target, seg
        phase = (target - segments[seg].end_ms) / period
    return math.inf, seg


def _first_arrival(rng: np.random.Generator, period_ms: float, arrival: ArrivalProcess) -> float:
    if arrival is ArrivalProcess.POISSON:
        return float(rng.exponential(period_ms))
    # Random phase keeps fixed-rate publishers unsynchronised.
    return float(rng.uniform(0.0, period_ms))


def _gap(rng: np.random.Generator, period_ms: float, arrival: ArrivalProcess) -> float:
    if arrival is ArrivalProcess.POISSON:
        return float(rng.exponential(period_ms))
    if arrival is ArrivalProcess.FIXED:
        return period_ms
    return float(rng.uniform(0.5 * period_ms, 1.5 * period_ms))
