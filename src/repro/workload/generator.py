"""Publication schedules.

The paper says each publisher "continuously publishes messages at a
certain rate", quantified as the average number of messages per minute.
Three arrival processes are provided; **Poisson** is the default (matches
"average rate" semantics and is the standard open-loop workload model),
with deterministic and jittered-uniform alternatives for ablations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.workload.scenarios import Scenario, draw_message_deadline_ms
from repro.workload.subscriptions import random_attributes


class ArrivalProcess(enum.Enum):
    """How inter-publication gaps are drawn."""

    POISSON = "poisson"  # exponential gaps
    FIXED = "fixed"  # exact period, random initial phase
    UNIFORM = "uniform"  # gaps uniform in [0.5, 1.5] * period


@dataclass(frozen=True, slots=True)
class Publication:
    """One scheduled publish action."""

    time_ms: float
    publisher: str
    attributes: Mapping[str, float]
    size_kb: float
    deadline_ms: float | None


def generate_publications(
    rng: np.random.Generator,
    publishers: Sequence[str],
    rate_per_minute: float,
    duration_ms: float,
    scenario: Scenario,
    size_kb: float = 50.0,
    arrival: ArrivalProcess = ArrivalProcess.POISSON,
    attributes: Sequence[str] = ("A1", "A2"),
    value_range: tuple[float, float] = (0.0, 10.0),
    deadline_range_ms: tuple[float, float] = (10_000.0, 30_000.0),
) -> list[Publication]:
    """All publications in ``[0, duration_ms)``, time-sorted.

    ``rate_per_minute`` is per publisher (the paper's "publishing rate").
    A rate of 0 yields an empty schedule (the figures' leftmost points).
    """
    if rate_per_minute < 0.0:
        raise ValueError("rate_per_minute must be non-negative")
    if duration_ms <= 0.0:
        raise ValueError("duration_ms must be positive")
    if size_kb <= 0.0:
        raise ValueError("size_kb must be positive")
    if rate_per_minute == 0.0 or not publishers:
        return []

    period_ms = 60_000.0 / rate_per_minute
    out: list[Publication] = []
    for publisher in publishers:
        t = _first_arrival(rng, period_ms, arrival)
        while t < duration_ms:
            out.append(
                Publication(
                    time_ms=t,
                    publisher=publisher,
                    attributes=random_attributes(rng, attributes, value_range),
                    size_kb=size_kb,
                    deadline_ms=draw_message_deadline_ms(scenario, rng, deadline_range_ms),
                )
            )
            t += _gap(rng, period_ms, arrival)
    out.sort(key=lambda p: (p.time_ms, p.publisher))
    return out


def _first_arrival(rng: np.random.Generator, period_ms: float, arrival: ArrivalProcess) -> float:
    if arrival is ArrivalProcess.POISSON:
        return float(rng.exponential(period_ms))
    # Random phase keeps fixed-rate publishers unsynchronised.
    return float(rng.uniform(0.0, period_ms))


def _gap(rng: np.random.Generator, period_ms: float, arrival: ArrivalProcess) -> float:
    if arrival is ArrivalProcess.POISSON:
        return float(rng.exponential(period_ms))
    if arrival is ArrivalProcess.FIXED:
        return period_ms
    return float(rng.uniform(0.5 * period_ms, 1.5 * period_ms))
