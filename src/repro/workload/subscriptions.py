"""Random subscription filters (the paper's ``A1<x1 ∧ A2<x2`` workload)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.pubsub.filters import AndFilter, Filter, Predicate


def random_conjunctive_filter(
    rng: np.random.Generator,
    attributes: Sequence[str] = ("A1", "A2"),
    value_range: tuple[float, float] = (0.0, 10.0),
    op: str = "<",
) -> Filter:
    """One random conjunction ``A1 < x1 ∧ A2 < x2 ∧ ...``.

    With thresholds and message values both uniform on the same range, a
    ``k``-attribute filter has expected selectivity ``(1/2)^k`` — the
    paper's 25 % for ``k = 2``.
    """
    lo, hi = value_range
    if not lo < hi:
        raise ValueError(f"bad value_range {value_range}")
    if not attributes:
        raise ValueError("need at least one attribute")
    predicates = [
        Predicate(attr, op, float(rng.uniform(lo, hi))) for attr in attributes
    ]
    if len(predicates) == 1:
        return predicates[0]
    return AndFilter(predicates)


def random_attributes(
    rng: np.random.Generator,
    attributes: Sequence[str] = ("A1", "A2"),
    value_range: tuple[float, float] = (0.0, 10.0),
) -> dict[str, float]:
    """One random message header ``{A1=x1, A2=x2}``."""
    lo, hi = value_range
    if not lo < hi:
        raise ValueError(f"bad value_range {value_range}")
    return {attr: float(rng.uniform(lo, hi)) for attr in attributes}
