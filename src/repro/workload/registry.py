"""Unified scenario registry: one namespace for every runnable scenario.

Three scenario families grew up in three modules with three lookup
conventions: the scale tier's :data:`~repro.workload.scenarios.SCALE_SCENARIOS`
(sized populations), the dynamics :data:`~repro.workload.dynamics.PRESETS`
(topology-parameterised intervention scripts), and — new with the fault
model — *explicit* fault scripts, either hand-written or emitted by the
fuzzer as shrunk counterexamples.  This module folds all three into one
:func:`registry` keyed by qualified name (``scale:100k``,
``preset:flash-crowd``, ``script:<name>``) so CLIs, tests and the fuzzer
resolve scenarios through a single lookup.

It also owns the **script wire format**: a :class:`ScenarioScript` round-
trips through :func:`script_to_dict` / :func:`script_from_dict` as plain
JSON (class-name tagged interventions, lists for tuples), which is what
``--script`` files and fuzzer repro bundles contain.  The round trip is
exact: rebuilt scripts compare equal to the originals, so a replayed
counterexample is the counterexample.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable

from repro.network.topology import Topology
from repro.workload.dynamics import (
    PRESETS,
    BrokerOutage,
    BrokerRecover,
    CascadeOutage,
    ChurnWave,
    FlashCrowd,
    LinkDegrade,
    LinkFailure,
    LinkPartition,
    LinkRecover,
    LinkRestore,
    RateBurst,
    ScenarioScript,
)
from repro.workload.scenarios import SCALE_SCENARIOS, ScaleScenarioSpec

#: Every intervention class, keyed by the wire-format type tag.  The tag
#: is the class name: stable, greppable, and self-describing in JSON.
INTERVENTION_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        RateBurst, LinkDegrade, LinkRecover, ChurnWave, FlashCrowd,
        LinkFailure, LinkRestore, LinkPartition,
        BrokerOutage, BrokerRecover, CascadeOutage,
    )
}

#: Fields that are tuples on the dataclass but lists on the wire.
_TUPLE_FIELDS = {"group"}

#: Wire-format version; bump on incompatible script-shape changes.
SCRIPT_SCHEMA = 1


def intervention_to_dict(item: Any) -> dict[str, Any]:
    """One intervention as a JSON-able, class-name-tagged dict."""
    name = type(item).__name__
    if name not in INTERVENTION_TYPES:
        raise TypeError(f"not a known intervention type: {item!r}")
    out: dict[str, Any] = {"type": name}
    for f in fields(item):
        value = getattr(item, f.name)
        out[f.name] = list(value) if isinstance(value, tuple) else value
    return out


def intervention_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild one intervention from its wire dict (exact inverse)."""
    payload = dict(data)
    name = payload.pop("type", None)
    cls = INTERVENTION_TYPES.get(name)
    if cls is None:
        raise ValueError(f"unknown intervention type {name!r}")
    known = {f.name for f in fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"{name}: unknown field(s) {sorted(unknown)}")
    for key in sorted(_TUPLE_FIELDS & set(payload)):
        payload[key] = tuple(payload[key])
    return cls(**payload)


def script_to_dict(script: ScenarioScript) -> dict[str, Any]:
    """A :class:`ScenarioScript` as a JSON-able dict."""
    return {
        "schema": SCRIPT_SCHEMA,
        "interventions": [intervention_to_dict(i) for i in script.interventions],
    }


def script_from_dict(data: dict[str, Any]) -> ScenarioScript:
    """Rebuild a script from :func:`script_to_dict` output.

    Raises ``ValueError`` on a wrong schema or malformed intervention —
    a replay file must either reproduce the scenario exactly or refuse.
    """
    if not isinstance(data, dict):
        raise ValueError(f"script payload must be a dict, got {type(data).__name__}")
    schema = data.get("schema", SCRIPT_SCHEMA)
    if schema != SCRIPT_SCHEMA:
        raise ValueError(f"unsupported script schema {schema!r} (expected {SCRIPT_SCHEMA})")
    items = data.get("interventions", [])
    return ScenarioScript(
        interventions=tuple(intervention_from_dict(i) for i in items)
    )


def save_script(path: str | Path, script: ScenarioScript, **meta: Any) -> Path:
    """Write a replayable script file (wire dict + caller metadata)."""
    path = Path(path)
    payload = script_to_dict(script)
    if meta:
        payload["meta"] = meta
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_script(path: str | Path) -> ScenarioScript:
    """Read a script file written by :func:`save_script` (or by hand)."""
    return script_from_dict(json.loads(Path(path).read_text()))


# --------------------------------------------------------------------- #
# The unified registry.
# --------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class ScenarioEntry:
    """One runnable scenario under one qualified name.

    Exactly one of the three payloads is set, matching ``kind``:

    * ``scale`` — a sized population spec (``scale:100k``);
    * ``preset`` — a topology-parameterised script factory
      (``preset:flash-crowd``): call :meth:`compile` with the run's
      topology and duration to get the concrete script;
    * ``script`` — an explicit, already-concrete intervention script
      (``script:<name>``, e.g. a fuzzer counterexample).
    """

    name: str
    kind: str
    description: str
    scale_spec: ScaleScenarioSpec | None = None
    preset: Callable[[Topology, float], ScenarioScript] | None = None
    script: ScenarioScript | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("scale", "preset", "script"):
            raise ValueError(f"unknown scenario kind {self.kind!r}")
        payload = {
            "scale": self.scale_spec,
            "preset": self.preset,
            "script": self.script,
        }[self.kind]
        if payload is None:
            raise ValueError(f"{self.name}: kind {self.kind!r} needs its payload")

    @property
    def qualified(self) -> str:
        return f"{self.kind}:{self.name}"

    def compile(self, topology: Topology, duration_ms: float) -> ScenarioScript:
        """The concrete intervention script for one run's world.

        Scale entries have no interventions (empty script); presets are
        compiled against the topology; explicit scripts pass through.
        """
        if self.kind == "preset":
            return self.preset(topology, duration_ms)
        if self.kind == "script":
            return self.script
        return ScenarioScript()


def registry(
    extra_scripts: dict[str, ScenarioScript] | None = None,
) -> dict[str, ScenarioEntry]:
    """All known scenarios keyed by qualified name.

    ``extra_scripts`` adds explicit scripts (e.g. loaded counterexample
    files) under ``script:<name>``; a clash with a built-in name raises.
    """
    entries: dict[str, ScenarioEntry] = {}
    for name, spec in SCALE_SCENARIOS.items():
        entry = ScenarioEntry(
            name=name, kind="scale",
            description=f"scale tier: {spec.subscribers:,} subscribers",
            scale_spec=spec,
        )
        entries[entry.qualified] = entry
    for name, factory in PRESETS.items():
        entry = ScenarioEntry(
            name=name, kind="preset",
            description=(factory.__doc__ or "dynamics preset").strip().splitlines()[0],
            preset=factory,
        )
        entries[entry.qualified] = entry
    for name, script in (extra_scripts or {}).items():
        entry = ScenarioEntry(
            name=name, kind="script",
            description=f"explicit script ({len(script.interventions)} intervention(s))",
            script=script,
        )
        if entry.qualified in entries:
            raise ValueError(f"duplicate scenario name {entry.qualified!r}")
        entries[entry.qualified] = entry
    return entries


def resolve(name: str, extra_scripts: dict[str, ScenarioScript] | None = None) -> ScenarioEntry:
    """Look up one scenario by qualified (``kind:name``) or bare name.

    A bare name is accepted when unambiguous across kinds.
    """
    entries = registry(extra_scripts)
    if name in entries:
        return entries[name]
    matches = [e for q, e in entries.items() if q.split(":", 1)[1] == name]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise KeyError(f"unknown scenario {name!r}; known: {sorted(entries)}")
    raise KeyError(
        f"ambiguous scenario {name!r}: matches {sorted(e.qualified for e in matches)}"
    )
