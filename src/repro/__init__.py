"""repro — Bounded-delay message delivery in publish/subscribe systems.

A from-scratch Python reproduction of Wang, Cao, Li & Wu, *"Achieving
Bounded Delay on Message Delivery in Publish/Subscribe Systems"*,
ICPP 2006: a mesh broker overlay with stochastic link bandwidth, and the
EB / PC / EBPC delay-aware scheduling strategies compared against FIFO
and minimum-remaining-lifetime baselines.

Quickstart::

    from repro import SimulationConfig, Scenario, run_simulation

    result = run_simulation(SimulationConfig(
        scenario=Scenario.PSD, strategy="eb",
        publishing_rate_per_min=10, duration_ms=5 * 60_000,
    ))
    print(result.delivery_rate)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

from repro.core import (
    EbpcStrategy,
    EbStrategy,
    FifoStrategy,
    PcStrategy,
    RemainingLifetimeStrategy,
    Strategy,
    make_strategy,
)
from repro.des import RngStreams, Simulator
from repro.network import Topology, build_acyclic_tree, build_layered_mesh, build_random_mesh
from repro.pubsub import (
    Message,
    MetricsCollector,
    PubSubSystem,
    Subscription,
    SystemConfig,
    parse_filter,
)
from repro.sim import (
    SimulationConfig,
    SimulationResult,
    run_simulation,
    sweep_publishing_rate,
    sweep_r_weight,
)
from repro.workload import Scenario

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core strategies
    "Strategy",
    "FifoStrategy",
    "RemainingLifetimeStrategy",
    "EbStrategy",
    "PcStrategy",
    "EbpcStrategy",
    "make_strategy",
    # kernel
    "Simulator",
    "RngStreams",
    # network
    "Topology",
    "build_layered_mesh",
    "build_acyclic_tree",
    "build_random_mesh",
    # pubsub
    "Message",
    "Subscription",
    "parse_filter",
    "PubSubSystem",
    "SystemConfig",
    "MetricsCollector",
    # harness
    "Scenario",
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
    "sweep_publishing_rate",
    "sweep_r_weight",
]
