"""Figure 4 benches: EB vs PC vs EBPC across the EB weight r.

Regenerates both panels (4a: SSD earning, 4b: PSD delivery rate) at bench
scale and checks the paper's qualitative shape: PC trails EB in SSD, and
EBPC interpolates between the two (its endpoints coincide exactly).
"""

from __future__ import annotations

from benchmarks.conftest import record_series
from repro.experiments import figure4

R_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_fig4a_ssd_earning_vs_r(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: figure4.run_panel_a(bench_scale, r_values=R_GRID),
        rounds=1,
        iterations=1,
    )
    record_series(benchmark, result)
    ebpc, eb, pc = result.series["ebpc"], result.series["eb"], result.series["pc"]
    # Paper: PC earns less than EB in SSD.
    assert pc[0] < eb[0]
    # Endpoint identities: EBPC(0) == PC, EBPC(1) == EB.
    assert ebpc[0] == pc[0]
    assert ebpc[-1] == eb[-1]


def test_fig4b_psd_delivery_vs_r(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: figure4.run_panel_b(bench_scale, r_values=R_GRID),
        rounds=1,
        iterations=1,
    )
    record_series(benchmark, result)
    ebpc, eb, pc = result.series["ebpc"], result.series["eb"], result.series["pc"]
    assert ebpc[0] == pc[0] and ebpc[-1] == eb[-1]
    # Paper: EB and PC are close in PSD (within a third of each other).
    assert abs(eb[0] - pc[0]) <= 0.35 * max(eb[0], pc[0])
