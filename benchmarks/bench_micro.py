"""Micro-benchmarks for the hot paths.

These auto-calibrate (many rounds) and exist to keep the simulator fast
enough for paper-scale sweeps: matching, metric kernels, queue selection,
event throughput and routing setup.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import expected_benefit, expected_benefit_vec
from repro.core.pruning import DEFAULT_EPSILON, PruningPolicy
from repro.core.queueing import ScheduledQueue
from repro.core.registry import STRATEGY_NAMES, make_strategy
from repro.core.strategies import EbStrategy, QueueEntry
from repro.des.simulator import Simulator
from repro.network.routing import compute_sink_tree
from repro.network.topology import build_layered_mesh
from repro.pubsub.matching import BruteForceMatcher, CountingIndexMatcher
from repro.pubsub.subscription import RowArrays
from repro.stats.normal import normal_cdf_vec
from repro.workload.subscriptions import random_attributes, random_conjunctive_filter
from tests.core.helpers import make_ctx, make_message, make_row

N_SUBSCRIPTIONS = 1000
DRAIN_QUEUE_DEPTH = 500


def _build_matchers():
    rng = np.random.default_rng(0)
    filters = [(f"s{i}", random_conjunctive_filter(rng)) for i in range(N_SUBSCRIPTIONS)]
    brute = BruteForceMatcher()
    index = CountingIndexMatcher()
    for key, f in filters:
        brute.add(key, f)
        index.add(key, f)
    messages = [random_attributes(rng) for _ in range(100)]
    return brute, index, messages


@pytest.fixture(scope="module")
def matchers():
    return _build_matchers()


def test_match_brute_force_1k_subs(benchmark, matchers):
    brute, _, messages = matchers
    benchmark(lambda: [brute.match(m) for m in messages])


def test_match_counting_index_1k_subs(benchmark, matchers):
    _, index, messages = matchers
    benchmark(lambda: [index.match(m) for m in messages])


@pytest.fixture(scope="module")
def index_filters():
    rng = np.random.default_rng(1)
    return [(f"s{i}", random_conjunctive_filter(rng)) for i in range(N_SUBSCRIPTIONS)]


def test_counting_index_build_incremental(benchmark, index_filters):
    def build():
        index = CountingIndexMatcher()
        for key, f in index_filters:
            index.add(key, f)
        return index

    benchmark(build)


def test_counting_index_build_bulk(benchmark, index_filters):
    def build():
        index = CountingIndexMatcher()
        index.add_many(index_filters)
        return index

    benchmark(build)


@pytest.fixture(scope="module")
def entry_rows():
    return [
        make_row(f"S{i}", deadline_ms=10_000.0 * (1 + i % 6), nn=1 + i % 4,
                 mean=50.0 + i, variance=400.0)
        for i in range(40)
    ]


def test_eb_scalar_40_rows(benchmark, entry_rows):
    msg = make_message()
    benchmark(lambda: expected_benefit(entry_rows, msg, 5_000.0, 2.0))


def test_eb_vectorised_40_rows(benchmark, entry_rows):
    msg = make_message()
    arrays = RowArrays.from_rows(entry_rows)
    benchmark(lambda: expected_benefit_vec(arrays, msg, 5_000.0, 2.0))


def test_normal_cdf_vec_kernel(benchmark):
    x = np.linspace(-3, 3, 1000)
    mean = np.full(1000, 0.5)
    std = np.full(1000, 1.5)
    benchmark(lambda: normal_cdf_vec(x, mean, std))


def test_strategy_select_50_entry_queue(benchmark, entry_rows):
    entries = [
        QueueEntry(make_message(msg_id=i, publish_time=-100.0 * i), entry_rows[:8], 0.0, i)
        for i in range(50)
    ]
    ctx = make_ctx(now=1_000.0)
    strategy = EbStrategy()
    benchmark(lambda: strategy.select(entries, ctx))


# ---------------------------------------------------------------------- #
# Queue drain: the broker's service loop over one deep output queue.
# The scan backend is the legacy O(n²) full rescan; "auto" picks the
# incremental ScheduledQueue backend for the strategy (exact keyed heap
# for fifo/rl, amortised bound heap for eb/pc/ebpc).  Same entries, same
# decisions — only the servicing structure differs.
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def drain_entries():
    rng = np.random.default_rng(7)
    entries = []
    for i in range(DRAIN_QUEUE_DEPTH):
        rows = [
            make_row(
                f"S{i}_{j}",
                deadline_ms=float(rng.uniform(20_000.0, 120_000.0)),
                nn=1 + int(rng.integers(0, 3)),
                mean=float(rng.uniform(20.0, 120.0)),
                variance=float(rng.uniform(100.0, 900.0)),
            )
            for j in range(1 + int(rng.integers(0, 7)))
        ]
        message = make_message(msg_id=i, publish_time=float(-rng.uniform(0.0, 5_000.0)))
        entries.append(QueueEntry(message, rows, enqueue_time=0.0, seq=i))
    return entries


def _drain_queue(entries, strategy_name: str, backend: str) -> int:
    strategy = make_strategy(strategy_name)
    queue = ScheduledQueue(
        strategy,
        PruningPolicy.for_strategy(strategy.probabilistic_pruning),
        DEFAULT_EPSILON,
        planning_delay_ms=2.0,
        backend=backend,
    )
    for entry in entries:
        queue.push(entry)
    now, sent = 0.0, 0
    while queue:
        now += 40.0  # one transmission slot per service
        queue.prune(now)
        if not queue:
            break
        queue.pop_best(make_ctx(now=now))
        sent += 1
    return sent


@pytest.mark.parametrize("name", STRATEGY_NAMES)
def test_queue_drain_500_incremental(benchmark, name, drain_entries):
    sent = benchmark.pedantic(
        lambda: _drain_queue(drain_entries, name, "auto"), rounds=3, iterations=1
    )
    benchmark.extra_info["sent"] = sent
    assert 0 < sent <= DRAIN_QUEUE_DEPTH


@pytest.mark.parametrize("name", STRATEGY_NAMES)
def test_queue_drain_500_scan(benchmark, name, drain_entries):
    sent = benchmark.pedantic(
        lambda: _drain_queue(drain_entries, name, "scan"), rounds=3, iterations=1
    )
    benchmark.extra_info["sent"] = sent
    assert 0 < sent <= DRAIN_QUEUE_DEPTH


def test_queue_drain_decisions_match(drain_entries):
    """Both servicing structures drain the same number of entries."""
    for name in STRATEGY_NAMES:
        assert _drain_queue(drain_entries, name, "auto") == _drain_queue(
            drain_entries, name, "scan"
        )


def test_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    assert benchmark(run_10k_events) == 10_000


@pytest.mark.parametrize("engine", ["event", "fused"])
def test_event_dispatch_engines(benchmark, engine):
    """Bare dispatch loop, per-event heap pops vs the fused window drain.

    Same 10k chained ticks as above, driven through ``FusedEngine`` in
    system-less mode (no lookahead work) — isolates the inner drain
    loop's overhead against ``Simulator.run``.
    """
    from repro.pubsub.engine import make_engine

    def run_10k_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        eng = make_engine(engine, sim)
        if eng is None:
            sim.run()
        else:
            eng.run()
        return count

    assert benchmark(run_10k_events) == 10_000


def test_sink_tree_paper_topology(benchmark):
    topo = build_layered_mesh(np.random.default_rng(0))
    sinks = [b for b in topo.brokers if topo.subscribers_of(b)]
    benchmark(lambda: [compute_sink_tree(topo, s) for s in sinks])
