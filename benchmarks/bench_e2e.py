"""End-to-end ingest benchmark: publish→deliver throughput.

Builds the paper's layered mesh scaled to ~1k / 5k / 20k subscriptions,
schedules a fixed publication workload, runs the simulation to completion
and reports wall-clock throughput per (strategy, subscription count) for
the vectorised ingest path — plus a vector-vs-oracle matcher comparison
that also asserts the two backends reach identical delivery decisions.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_e2e.py            # full matrix
    PYTHONPATH=src python benchmarks/bench_e2e.py --smoke    # CI-sized

Writes ``BENCH_e2e.json`` (override with ``--out``): one record per
measured point and a summary of the oracle comparison, seeding the
repo's end-to-end perf trajectory.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.registry import STRATEGY_NAMES
from repro.network.topology import LayeredMeshSpec
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, schedule_workload
from repro.workload.scenarios import Scenario

#: Edge brokers in the paper topology (layer sizes 4/4/8/16) — the
#: subscription count is 16 × subscribers_per_edge_broker.
EDGE_BROKERS = 16

#: Target subscription populations and the per-edge-broker count hitting
#: them on the paper topology.
SUB_TARGETS: dict[int, int] = {1008: 63, 5008: 313, 20000: 1250}


def _point_config(
    subs_per_edge: int, strategy: str, matcher_backend: str,
    rate: float, minutes: float, seed: int,
) -> SimulationConfig:
    return SimulationConfig(
        seed=seed,
        scenario=Scenario.SSD,
        strategy=strategy,
        publishing_rate_per_min=rate,
        duration_ms=minutes * 60_000.0,
        grace_ms=30_000.0,
        topology_spec=LayeredMeshSpec(subscribers_per_edge_broker=subs_per_edge),
        matcher_backend=matcher_backend,
    )


def run_point(config: SimulationConfig) -> dict:
    """Build, run and time one simulation; the workload build is excluded
    from the timed window (ingest throughput, not setup cost)."""
    system = build_system(config)
    published_planned = schedule_workload(system, config)
    start = time.perf_counter()
    system.sim.run(until=config.horizon_ms)
    wall_s = time.perf_counter() - start
    m = system.metrics
    deliveries = m.deliveries_valid + m.deliveries_late
    return {
        "strategy": config.strategy,
        "subscriptions": EDGE_BROKERS * config.topology_spec.subscribers_per_edge_broker,
        "matcher_backend": config.matcher_backend,
        "seed": config.seed,
        "published": m.published,
        "published_planned": published_planned,
        "deliveries": deliveries,
        "deliveries_valid": m.deliveries_valid,
        "receptions": m.receptions,
        "earning": m.earning,
        "wall_s": round(wall_s, 4),
        "publish_throughput_per_s": round(m.published / wall_s, 2) if wall_s else None,
        "delivery_throughput_per_s": round(deliveries / wall_s, 2) if wall_s else None,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 1k subscriptions, two strategies")
    parser.add_argument("--out", default="BENCH_e2e.json", help="output JSON path")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="publications per minute per publisher")
    parser.add_argument("--minutes", type=float, default=None,
                        help="simulated publication window (default 1.0, smoke 0.5)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    minutes = args.minutes if args.minutes is not None else (0.5 if args.smoke else 1.0)
    if args.smoke:
        strategies: tuple[str, ...] = ("eb", "fifo")
        sizes = [1008]
        compare_at = 1008
    else:
        strategies = STRATEGY_NAMES
        sizes = sorted(SUB_TARGETS)
        compare_at = 5008

    points: list[dict] = []
    vector_at: dict[tuple[str, int], dict] = {}
    for subs in sizes:
        per_edge = SUB_TARGETS[subs]
        for strategy in strategies:
            record = run_point(_point_config(
                per_edge, strategy, "vector", args.rate, minutes, args.seed))
            points.append(record)
            vector_at[(strategy, subs)] = record
            print(f"vector  {strategy:5s} {subs:>6d} subs: "
                  f"{record['wall_s']:7.2f}s wall, "
                  f"{record['delivery_throughput_per_s']:>10.0f} deliveries/s")

    comparison: list[dict] = []
    for strategy in strategies:
        per_edge = SUB_TARGETS[compare_at]
        # The matrix above already measured this exact vector config —
        # reuse its record rather than re-simulating the expensive point.
        vector = vector_at[(strategy, compare_at)]
        oracle = run_point(_point_config(
            per_edge, strategy, "oracle", args.rate, minutes, args.seed))
        for field in ("published", "deliveries", "deliveries_valid", "receptions", "earning"):
            if vector[field] != oracle[field]:
                raise AssertionError(
                    f"{strategy}@{compare_at}: matcher backends diverged on "
                    f"{field}: vector={vector[field]} oracle={oracle[field]}"
                )
        speedup = oracle["wall_s"] / vector["wall_s"] if vector["wall_s"] else None
        comparison.append({
            "strategy": strategy,
            "subscriptions": compare_at,
            "vector_wall_s": vector["wall_s"],
            "oracle_wall_s": oracle["wall_s"],
            "speedup": round(speedup, 3) if speedup else None,
            "decisions_identical": True,
        })
        points.append(oracle)
        print(f"compare {strategy:5s} {compare_at:>6d} subs: "
              f"vector {vector['wall_s']:6.2f}s vs oracle {oracle['wall_s']:6.2f}s "
              f"-> {speedup:.2f}x, decisions identical")

    result = {
        "meta": {
            "bench": "bench_e2e",
            "mode": "smoke" if args.smoke else "full",
            "scenario": "ssd",
            "rate_per_min_per_publisher": args.rate,
            "minutes": minutes,
            "seed": args.seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "points": points,
        "oracle_comparison": comparison,
    }
    out = Path(args.out)
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out}")
    best = max((c["speedup"] or 0.0) for c in comparison)
    print(f"best vector-vs-oracle speedup at {compare_at} subscriptions: {best:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
