"""End-to-end ingest + delivery benchmark: publish→deliver throughput.

Builds the paper's layered mesh scaled to ~1k / 5k / 20k subscriptions,
schedules a fixed publication workload, runs the simulation to completion
and reports wall-clock throughput per (strategy, subscription count) for
the vectorised ingest path — plus two differential comparisons that also
assert identical delivery decisions:

* vector vs oracle **matcher** backends (the PR-2 ingest spine), and
* ledger vs scalar **metrics** backends on a delivery-heavy high-fanout
  scenario (wide match-all filters, so every message fans out to every
  subscriber and the batched columnar delivery spine dominates).

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_e2e.py            # full matrix
    PYTHONPATH=src python benchmarks/bench_e2e.py --smoke    # CI-sized

Writes ``BENCH_e2e.json`` (override with ``--out``): one record per
measured point and the comparison summaries, seeding the repo's
end-to-end perf trajectory.  ``benchmarks/check_bench_regression.py``
guards the smoke points against the committed baseline in CI.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.registry import STRATEGY_NAMES, make_strategy
from repro.des.rng import RngStreams
from repro.des.simulator import Simulator
from repro.network.topology import LayeredMeshSpec, build_layered_mesh
from repro.pubsub.filters import Predicate
from repro.pubsub.subscription import Subscription
from repro.pubsub.system import PubSubSystem, SystemConfig
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_system, schedule_dynamics, schedule_workload
from repro.workload.dynamics import churn_burst
from repro.workload.scenarios import SSD_PRICE_BY_DEADLINE_MS, Scenario

#: Edge brokers in the paper topology (layer sizes 4/4/8/16) — the
#: subscription count is 16 × subscribers_per_edge_broker.
EDGE_BROKERS = 16

#: Target subscription populations and the per-edge-broker count hitting
#: them on the paper topology.
SUB_TARGETS: dict[int, int] = {1008: 63, 5008: 313, 20000: 1250}


def _point_config(
    subs_per_edge: int, strategy: str, matcher_backend: str,
    rate: float, minutes: float, seed: int,
) -> SimulationConfig:
    return SimulationConfig(
        seed=seed,
        scenario=Scenario.SSD,
        strategy=strategy,
        publishing_rate_per_min=rate,
        duration_ms=minutes * 60_000.0,
        grace_ms=30_000.0,
        topology_spec=LayeredMeshSpec(subscribers_per_edge_broker=subs_per_edge),
        matcher_backend=matcher_backend,
    )


def _fanout_config(
    subs_per_edge: int, strategy: str, metrics_backend: str,
    rate: float, minutes: float, seed: int,
) -> SimulationConfig:
    # Small messages keep links fast, so most of the population is
    # reachable in time and the delivery count stays huge.
    return SimulationConfig(
        seed=seed,
        scenario=Scenario.SSD,
        strategy=strategy,
        publishing_rate_per_min=rate,
        duration_ms=minutes * 60_000.0,
        grace_ms=30_000.0,
        message_size_kb=5.0,
        topology_spec=LayeredMeshSpec(subscribers_per_edge_broker=subs_per_edge),
        metrics_backend=metrics_backend,
    )


def _timed_run(system: PubSubSystem, config: SimulationConfig, published_planned: int) -> dict:
    start = time.perf_counter()
    system.sim.run(until=config.horizon_ms)
    wall_s = time.perf_counter() - start
    m = system.metrics
    deliveries = m.deliveries_valid + m.deliveries_late
    return {
        "strategy": config.strategy,
        "subscriptions": EDGE_BROKERS * config.topology_spec.subscribers_per_edge_broker,
        "matcher_backend": config.matcher_backend,
        "metrics_backend": config.metrics_backend,
        "seed": config.seed,
        "published": m.published,
        "published_planned": published_planned,
        "deliveries": deliveries,
        "deliveries_valid": m.deliveries_valid,
        "receptions": m.receptions,
        "earning": m.earning,
        "wall_s": round(wall_s, 4),
        "publish_throughput_per_s": round(m.published / wall_s, 2) if wall_s else None,
        "delivery_throughput_per_s": round(deliveries / wall_s, 2) if wall_s else None,
    }


def run_point(config: SimulationConfig) -> dict:
    """Build, run and time one simulation; the workload build is excluded
    from the timed window (ingest throughput, not setup cost)."""
    system = build_system(config)
    published_planned = schedule_workload(system, config)
    schedule_dynamics(system, config)
    return _timed_run(system, config, published_planned)


def _dynamics_config(
    subs_per_edge: int, strategy: str, rate: float, minutes: float, seed: int,
) -> SimulationConfig:
    """The churn+burst preset: a 3x rate burst through the middle half
    with 30-out/30-in churn waves at its onset and end — exercises the
    piecewise arrival process, mid-run (un)subscription and the epoch
    filter on the match path, all inside the timed window."""
    duration = minutes * 60_000.0
    # churn_burst never inspects the topology, so the preset builder runs
    # before the system exists.
    script = churn_burst(None, duration)
    return SimulationConfig(
        seed=seed,
        scenario=Scenario.SSD,
        strategy=strategy,
        publishing_rate_per_min=rate,
        duration_ms=duration,
        grace_ms=30_000.0,
        topology_spec=LayeredMeshSpec(subscribers_per_edge_broker=subs_per_edge),
        dynamics=script,
    )


#: Matches every message — the wide-match filter of the fanout scenario.
MATCH_ALL = Predicate("A1", "<", 1e9)


def run_fanout_point(config: SimulationConfig) -> dict:
    """Delivery-heavy scenario: every subscription is match-all, so each
    message fans out to the whole population and local delivery dominates
    the profile (the columnar delivery spine's home turf).  Deadlines and
    prices still follow the paper's SSD table so scheduling stays real."""
    streams = RngStreams(config.seed)
    topology = build_layered_mesh(streams.get("topology"), config.topology_spec)
    system = PubSubSystem(
        topology=topology,
        strategy=make_strategy(config.strategy),
        sim=Simulator(),
        streams=streams,
        config=SystemConfig(
            default_size_kb=config.message_size_kb,
            matcher_backend=config.matcher_backend,
            metrics_backend=config.metrics_backend,
        ),
    )
    rng = streams.get("subscriptions")
    deadlines = sorted(SSD_PRICE_BY_DEADLINE_MS)
    for name in sorted(topology.subscriber_brokers):
        dl = deadlines[int(rng.integers(0, len(deadlines)))]
        system.subscribe(
            Subscription(name, MATCH_ALL, deadline_ms=dl,
                         price=SSD_PRICE_BY_DEADLINE_MS[dl])
        )
    published_planned = schedule_workload(system, config)
    record = _timed_run(system, config, published_planned)
    record["scenario"] = "fanout"
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 1k subscriptions, two strategies")
    parser.add_argument("--out", default="BENCH_e2e.json", help="output JSON path")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="publications per minute per publisher")
    parser.add_argument("--minutes", type=float, default=None,
                        help="simulated publication window (default 1.0, smoke 0.5)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    minutes = args.minutes if args.minutes is not None else (0.5 if args.smoke else 1.0)
    if args.smoke:
        strategies: tuple[str, ...] = ("eb", "fifo")
        sizes = [1008]
        compare_at = 1008
    else:
        strategies = STRATEGY_NAMES
        sizes = sorted(SUB_TARGETS)
        compare_at = 5008

    points: list[dict] = []
    vector_at: dict[tuple[str, int], dict] = {}
    for subs in sizes:
        per_edge = SUB_TARGETS[subs]
        for strategy in strategies:
            record = run_point(_point_config(
                per_edge, strategy, "vector", args.rate, minutes, args.seed))
            points.append(record)
            vector_at[(strategy, subs)] = record
            print(f"vector  {strategy:5s} {subs:>6d} subs: "
                  f"{record['wall_s']:7.2f}s wall, "
                  f"{record['delivery_throughput_per_s']:>10.0f} deliveries/s")

    comparison: list[dict] = []
    for strategy in strategies:
        per_edge = SUB_TARGETS[compare_at]
        # The matrix above already measured this exact vector config —
        # reuse its record rather than re-simulating the expensive point.
        vector = vector_at[(strategy, compare_at)]
        oracle = run_point(_point_config(
            per_edge, strategy, "oracle", args.rate, minutes, args.seed))
        for field in ("published", "deliveries", "deliveries_valid", "receptions", "earning"):
            if vector[field] != oracle[field]:
                raise AssertionError(
                    f"{strategy}@{compare_at}: matcher backends diverged on "
                    f"{field}: vector={vector[field]} oracle={oracle[field]}"
                )
        speedup = oracle["wall_s"] / vector["wall_s"] if vector["wall_s"] else None
        comparison.append({
            "strategy": strategy,
            "subscriptions": compare_at,
            "vector_wall_s": vector["wall_s"],
            "oracle_wall_s": oracle["wall_s"],
            "speedup": round(speedup, 3) if speedup else None,
            "decisions_identical": True,
        })
        points.append(oracle)
        print(f"compare {strategy:5s} {compare_at:>6d} subs: "
              f"vector {vector['wall_s']:6.2f}s vs oracle {oracle['wall_s']:6.2f}s "
              f"-> {speedup:.2f}x, decisions identical")

    # Delivery-heavy high-fanout scenario: ledger vs scalar accounting.
    fanout_rate = 10.0
    if args.smoke:
        fanout_sizes = [1008]
        fanout_strategies: tuple[str, ...] = ("eb",)
    else:
        fanout_sizes = [20000]
        fanout_strategies = ("eb", "fifo")
    metrics_comparison: list[dict] = []
    for subs in fanout_sizes:
        per_edge = SUB_TARGETS[subs]
        for strategy in fanout_strategies:
            recs: dict[str, dict] = {}
            for backend in ("ledger", "scalar"):
                record = run_fanout_point(_fanout_config(
                    per_edge, strategy, backend, fanout_rate, minutes, args.seed))
                recs[backend] = record
                points.append(record)
                print(f"fanout  {strategy:5s} {subs:>6d} subs [{backend:6s}]: "
                      f"{record['wall_s']:7.2f}s wall, "
                      f"{record['delivery_throughput_per_s']:>10.0f} deliveries/s")
            for field in ("published", "deliveries", "deliveries_valid",
                          "receptions", "earning"):
                if recs["ledger"][field] != recs["scalar"][field]:
                    raise AssertionError(
                        f"fanout {strategy}@{subs}: metrics backends diverged "
                        f"on {field}: ledger={recs['ledger'][field]} "
                        f"scalar={recs['scalar'][field]}"
                    )
            speedup = (recs["scalar"]["wall_s"] / recs["ledger"]["wall_s"]
                       if recs["ledger"]["wall_s"] else None)
            metrics_comparison.append({
                "scenario": "fanout",
                "strategy": strategy,
                "subscriptions": subs,
                "deliveries": recs["ledger"]["deliveries"],
                "ledger_wall_s": recs["ledger"]["wall_s"],
                "scalar_wall_s": recs["scalar"]["wall_s"],
                "speedup": round(speedup, 3) if speedup else None,
                "decisions_identical": True,
            })
            print(f"fanout  {strategy:5s} {subs:>6d} subs: ledger "
                  f"{recs['ledger']['wall_s']:6.2f}s vs scalar "
                  f"{recs['scalar']['wall_s']:6.2f}s -> {speedup:.2f}x, "
                  f"decisions identical")

    # Churn+burst dynamics scenario: the scripted-intervention machinery
    # (piecewise arrivals, mid-run churn, epoch-filtered matching) under
    # the clock, guarded by the smoke baseline like every other point.
    if args.smoke:
        dynamics_points = [("eb", 1008)]
    else:
        dynamics_points = [("eb", 5008), ("fifo", 5008)]
    for strategy, subs in dynamics_points:
        record = run_point(_dynamics_config(
            SUB_TARGETS[subs], strategy, args.rate, minutes, args.seed))
        record["scenario"] = "dynamics"
        points.append(record)
        print(f"dynamic {strategy:5s} {subs:>6d} subs: "
              f"{record['wall_s']:7.2f}s wall, "
              f"{record['delivery_throughput_per_s']:>10.0f} deliveries/s")

    result = {
        "meta": {
            "bench": "bench_e2e",
            "mode": "smoke" if args.smoke else "full",
            "scenario": "ssd",
            "rate_per_min_per_publisher": args.rate,
            "minutes": minutes,
            "seed": args.seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "points": points,
        "oracle_comparison": comparison,
        "metrics_comparison": metrics_comparison,
    }
    out = Path(args.out)
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out}")
    best = max((c["speedup"] or 0.0) for c in comparison)
    print(f"best vector-vs-oracle speedup at {compare_at} subscriptions: {best:.2f}x")
    best_metrics = max((c["speedup"] or 0.0) for c in metrics_comparison)
    print(f"best ledger-vs-scalar fanout speedup: {best_metrics:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
