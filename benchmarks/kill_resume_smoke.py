"""Kill-and-resume smoke: SIGTERM a checkpointing run, resume, diff.

The crash-safety acceptance check, end to end through the real CLI:

1. run the CI-sized scale point uninterrupted and record its metrics
   (including the windowed-series sha256 — the byte-level identity probe);
2. start the same point with ``--checkpoint-every``, wait for the first
   snapshot to land, and SIGTERM the process — it must drain the current
   window, write a final checkpoint, and exit with code 3 and a resume
   hint on stderr;
3. ``--resume`` from the checkpoint root and assert the resumed run's
   metrics and series digest are identical to the uninterrupted run.

Usage (from the repo root)::

    python benchmarks/kill_resume_smoke.py
    python benchmarks/kill_resume_smoke.py --minutes 2 --every 10

Exits non-zero (with a diff on stderr) on any divergence; designed to run
as a CI job with no arguments.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Output lines that must be identical between the uninterrupted and the
#: resumed run.  Timing lines (build/run/ana, deliveries/s, RSS) and the
#: checkpoint accounting line legitimately differ.
_IDENTITY_PREFIXES = (
    "scenario", "strategy", "subscribers", "published", "deliveries",
    "delivery rate", "total earning", "log rows", "series sha256",
)


def _env() -> dict:
    env = dict(os.environ)
    src = os.fspath(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _scale_cmd(args: argparse.Namespace, extra: list[str]) -> list[str]:
    return [
        sys.executable, "-m", "repro", "scale",
        "--size", args.size,
        "--minutes", str(args.minutes),
        "--seed", str(args.seed),
        *extra,
    ]


def _identity_lines(stdout: str) -> dict[str, str]:
    lines = {}
    for line in stdout.splitlines():
        if ":" not in line:
            continue
        key, _, value = line.partition(":")
        if key.strip() in _IDENTITY_PREFIXES:
            lines[key.strip()] = value.strip()
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="smoke")
    parser.add_argument("--minutes", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--every", type=float, default=5.0,
                        help="checkpoint cadence in simulated seconds")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-phase subprocess timeout (wall seconds)")
    args = parser.parse_args(argv)
    env = _env()

    # Phase 1: the uninterrupted reference.
    print(f"[1/3] reference run ({args.size}, {args.minutes:g} min)...", flush=True)
    ref = subprocess.run(
        _scale_cmd(args, []), capture_output=True, text=True, env=env,
        timeout=args.timeout,
    )
    if ref.returncode != 0:
        print(f"FAIL: reference run exited {ref.returncode}:\n{ref.stderr}",
              file=sys.stderr)
        return 1
    expected = _identity_lines(ref.stdout)
    if "series sha256" not in expected:
        print("FAIL: reference run printed no series sha256", file=sys.stderr)
        return 1
    print(f"      series sha256 = {expected['series sha256'][:16]}…", flush=True)

    with tempfile.TemporaryDirectory(prefix="kill-resume-") as tmp:
        ck_root = Path(tmp) / "ck"

        # Phase 2: same run with checkpoints; SIGTERM after the first
        # snapshot publishes.
        print(f"[2/3] checkpointing run, SIGTERM after first snapshot...",
              flush=True)
        proc = subprocess.Popen(
            _scale_cmd(args, [
                "--checkpoint-every", str(args.every),
                "--checkpoint-dir", os.fspath(ck_root),
            ]),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        deadline = time.time() + args.timeout
        try:
            while time.time() < deadline:
                if list(ck_root.glob("ckpt-*/MANIFEST.json")):
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.02)
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=args.timeout)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        if proc.returncode != 3:
            print(
                f"FAIL: interrupted run exited {proc.returncode}, expected 3 "
                f"(SIGTERM landed too late, or the handler did not engage)\n"
                f"stderr:\n{err}", file=sys.stderr,
            )
            return 1
        if "resume with" not in err:
            print(f"FAIL: exit-3 stderr carries no resume hint:\n{err}",
                  file=sys.stderr)
            return 1
        snapshots = sorted(ck_root.glob("ckpt-*"))
        print(f"      exit 3 after {len(snapshots)} snapshot(s); "
              f"final: {snapshots[-1].name}", flush=True)

        # Phase 3: resume and diff.
        print(f"[3/3] resuming from {ck_root}...", flush=True)
        res = subprocess.run(
            _scale_cmd(args, ["--resume", os.fspath(ck_root)]),
            capture_output=True, text=True, env=env, timeout=args.timeout,
        )
        if res.returncode != 0:
            print(f"FAIL: resumed run exited {res.returncode}:\n{res.stderr}",
                  file=sys.stderr)
            return 1
        resumed = _identity_lines(res.stdout)
        diverged = {
            key: (expected.get(key), resumed.get(key))
            for key in _IDENTITY_PREFIXES
            if expected.get(key) != resumed.get(key)
        }
        if diverged:
            print("FAIL: resumed run diverged from the uninterrupted run:",
                  file=sys.stderr)
            for key, (want, got) in diverged.items():
                print(f"  {key}: uninterrupted={want!r} resumed={got!r}",
                      file=sys.stderr)
            return 1

    print("kill-and-resume smoke PASSED: resumed metrics and series digest "
          "identical to the uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
