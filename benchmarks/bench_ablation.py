"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation perturbs exactly one knob of the EB pipeline on a congested
PSD workload and records the metric deltas in ``extra_info``:

* ε (invalid-message threshold, Eq. 11): off / paper 5e-4 / aggressive
* downstream scheduling slack (the paper assumes 0 inside ``fdl``)
* oracle vs estimated link parameters
* RL lifetime aggregation (paper's average vs classic min)
* arrival process (Poisson vs fixed rate)
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.core.pruning import PruningPolicy
from repro.network.measurement import MeasurementMode
from repro.sim.config import PAPER_DURATION_MS, SimulationConfig
from repro.sim.runner import run_simulation
from repro.workload.generator import ArrivalProcess
from repro.workload.scenarios import Scenario

BASE = SimulationConfig(
    seed=BENCH_SEED,
    scenario=Scenario.PSD,
    strategy="eb",
    publishing_rate_per_min=12.0,
    duration_ms=PAPER_DURATION_MS * BENCH_SCALE,
)


def _run_grid(benchmark, configs: dict[str, SimulationConfig], metric=lambda r: r.delivery_rate):
    results = benchmark.pedantic(
        lambda: {label: run_simulation(cfg) for label, cfg in configs.items()},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["metric"] = {
        label: round(metric(r), 4) for label, r in results.items()
    }
    return results


def test_ablation_epsilon(benchmark):
    results = _run_grid(
        benchmark,
        {
            "off": BASE.replace(pruning_override=PruningPolicy.NONE),
            "expired-only": BASE.replace(pruning_override=PruningPolicy.EXPIRED),
            "paper-5e-4": BASE,
            "aggressive-0.2": BASE.replace(epsilon=0.2),
        },
    )
    benchmark.extra_info["traffic"] = {
        k: r.message_number for k, r in results.items()
    }
    # Probabilistic pruning must save traffic over expiry-only pruning
    # without giving up deliveries.
    assert results["paper-5e-4"].message_number <= results["expired-only"].message_number
    assert results["paper-5e-4"].deliveries_valid >= 0.9 * results["expired-only"].deliveries_valid


def test_ablation_scheduling_slack(benchmark):
    results = _run_grid(
        benchmark,
        {
            "paper-0ms": BASE,
            "slack-500ms": BASE.replace(scheduling_slack_per_hop_ms=500.0),
            "slack-5000ms": BASE.replace(scheduling_slack_per_hop_ms=5_000.0),
        },
    )
    # Slack only re-weights planning; the simulation still delivers.
    for r in results.values():
        assert r.deliveries_valid > 0


def test_ablation_measurement(benchmark):
    results = _run_grid(
        benchmark,
        {
            "oracle": BASE,
            "estimated": BASE.replace(measurement_mode=MeasurementMode.ESTIMATED),
        },
    )
    # Estimation converges fast on busy links: most of oracle quality holds.
    assert results["estimated"].delivery_rate >= 0.5 * results["oracle"].delivery_rate


def test_ablation_rl_aggregation(benchmark):
    results = _run_grid(
        benchmark,
        {
            "rl-average": BASE.replace(strategy="rl"),
            "rl-min": BASE.replace(strategy="rl", strategy_params={"aggregation": "min"}),
        },
    )
    for r in results.values():
        assert r.published > 0


def test_ablation_routing_single_vs_multipath(benchmark):
    """Section 3.3's trade: multi-path (DCP-style) buys reliability with
    duplicate traffic.  On the paper's mesh, two paths must carry strictly
    more traffic without a drastic delivery change."""
    results = _run_grid(
        benchmark,
        {
            "single-path": BASE,
            "two-paths": BASE.replace(routing_paths=2),
        },
    )
    benchmark.extra_info["traffic"] = {k: r.message_number for k, r in results.items()}
    assert results["two-paths"].message_number > results["single-path"].message_number
    for r in results.values():
        assert 0.0 <= r.delivery_rate <= 1.0


def test_ablation_arrival_process(benchmark):
    results = _run_grid(
        benchmark,
        {
            "poisson": BASE,
            "fixed": BASE.replace(arrival=ArrivalProcess.FIXED),
            "uniform": BASE.replace(arrival=ArrivalProcess.UNIFORM),
        },
    )
    # The qualitative level should not depend on the arrival model.
    rates = [r.delivery_rate for r in results.values()]
    assert max(rates) - min(rates) < 0.30
