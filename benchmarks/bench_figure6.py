"""Figure 6 benches (PSD): delivery rate and message number vs publishing
rate for EB / PC / FIFO / RL.

Shape checks mirror the paper: delivery rate falls with load for every
strategy, EB/PC stay well above FIFO which stays above RL (paper at rate
15: 40.1 % / 22.5 % / 11.6 %), and EB's traffic overhead is modest.
"""

from __future__ import annotations

from benchmarks.conftest import record_series
from repro.experiments import figure6

RATES = (3.0, 9.0, 15.0)


def test_fig6a_psd_delivery_vs_rate(benchmark, bench_scale):
    panel_a, _ = benchmark.pedantic(
        lambda: figure6.run_both_panels(bench_scale, rates=RATES),
        rounds=1,
        iterations=1,
    )
    record_series(benchmark, panel_a)
    top = panel_a.x_values.index(max(panel_a.x_values))
    eb, pc = panel_a.series["eb"][top], panel_a.series["pc"][top]
    fifo, rl = panel_a.series["fifo"][top], panel_a.series["rl"][top]
    assert min(eb, pc) > fifo > rl
    # Delivery rate decreases with load for every strategy.
    for series in panel_a.series.values():
        assert series[0] >= series[-1]


def test_fig6b_psd_traffic_vs_rate(benchmark, bench_scale):
    _, panel_b = benchmark.pedantic(
        lambda: figure6.run_both_panels(bench_scale, rates=RATES),
        rounds=1,
        iterations=1,
    )
    record_series(benchmark, panel_b)
    top = panel_b.x_values.index(max(panel_b.x_values))
    eb = panel_b.series["eb"][top]
    fifo = panel_b.series["fifo"][top]
    rl = panel_b.series["rl"][top]
    # Paper: +17 % vs FIFO, +60 % vs RL at rate 15.
    assert fifo <= eb <= 2.0 * fifo
    assert eb <= 2.5 * rl
