"""Bounded-memory scale benchmark: peak RSS and wall time, spill vs RAM.

Runs one member of the scale scenario family (100k+ subscribers, skewed
filter popularity, high fanout — see ``repro.workload.scenarios``)
twice: once with the delivery/publication logs fully in memory, once
with ``log_spill`` writing sealed chunks to a temp ``.npz`` ring.  Each
mode runs in a **fresh subprocess** so the two ``ru_maxrss`` high-water
marks cannot contaminate each other, and the windowed-series digests of
the two runs are asserted identical — spill is a residency knob, not a
semantics knob.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_scale.py                # 100k
    PYTHONPATH=src python benchmarks/bench_scale.py --size 250k
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke        # CI-sized

Results merge into ``BENCH_e2e.json`` (override with ``--out``) under a
``"scale"`` key, preserving whatever ``bench_e2e.py`` already wrote
there; CI uploads the file as an artifact so the RSS trajectory is
recorded per run.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent


def run_child(
    args: argparse.Namespace,
    spill: bool,
    checkpoint_every_s: float | None = None,
    shards: int = 0,
) -> dict:
    """Run one measured point in a fresh interpreter; returns its record."""
    cmd = [
        sys.executable, os.fspath(Path(__file__).resolve()),
        "--child",
        "--size", args.size,
        "--strategy", args.strategy,
        "--rate", str(args.rate),
        "--minutes", str(args.minutes),
        "--seed", str(args.seed),
        "--chunk-rows", str(args.chunk_rows),
        "--engine", args.engine,
        "--shards", str(shards),
        "--shard-backend", args.shard_backend,
    ]
    if spill:
        cmd.append("--spill")
    if checkpoint_every_s is not None:
        cmd += ["--checkpoint-every", str(checkpoint_every_s)]
    if args.profile:
        cmd.append("--profile")
    env = dict(os.environ)
    src = os.fspath(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale child ({'spill' if spill else 'memory'}) failed:\n{proc.stderr}"
        )
    if args.profile and proc.stderr.strip():
        print(proc.stderr.strip())
    # The record is the last stdout line (progress prints precede it).
    return json.loads(proc.stdout.strip().splitlines()[-1])


def child_main(args: argparse.Namespace) -> int:
    import tempfile

    from repro.core import profiling
    from repro.experiments.scale import run_scale_point

    if args.profile:
        profiling.enable()
    with tempfile.TemporaryDirectory(prefix="bench-ck-") as ck_tmp:
        checkpoint = None
        if args.checkpoint_every is not None:
            from repro.sim.runner import CheckpointPolicy

            checkpoint = CheckpointPolicy(
                Path(ck_tmp) / "ck",
                every_ms=args.checkpoint_every * 1000.0,
                keep=2,
            )
        point = run_scale_point(
            args.size,
            strategy=args.strategy,
            seed=args.seed,
            rate_per_min=args.rate,
            minutes=args.minutes,
            spill=args.spill,
            chunk_rows=args.chunk_rows,
            engine=args.engine,
            checkpoint=checkpoint,
            shards=args.shards,
            shard_backend=args.shard_backend,
        )
    if args.profile and profiling.ACTIVE is not None:
        # Stage table goes to stderr so stdout stays a clean JSON record.
        print(profiling.disable().format_table(), file=sys.stderr)
    print(json.dumps(point.as_dict()))
    return 0


def _load_avg() -> list[float] | None:
    try:
        return [round(x, 3) for x in os.getloadavg()]
    except (AttributeError, OSError):  # non-POSIX runner
        return None


def merge_out(out_path: Path, payload: dict) -> None:
    """Set the ``"scale"`` key of the bench JSON, keeping existing content."""
    existing: dict = {}
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
        except ValueError:
            existing = {}
    if not isinstance(existing, dict):
        existing = {}
    existing["scale"] = payload
    out_path.write_text(json.dumps(existing, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    try:
        # Fail typos fast when the package is importable (PYTHONPATH=src,
        # the documented invocation); without it the parent still parses
        # and the child reports the unknown size.
        from repro.core.chunked import DEFAULT_CHUNK_ROWS as default_chunk_rows
        from repro.workload.scenarios import SCALE_SCENARIOS

        size_choices: list[str] | None = sorted(SCALE_SCENARIOS)
    except ModuleNotFoundError:
        size_choices = None
        default_chunk_rows = 65_536
    parser.add_argument("--size", default="100k", choices=size_choices,
                        help="scale-family member (smoke | 100k | 250k | 1m)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (forces --size smoke, short window)")
    parser.add_argument("--strategy", default="eb")
    parser.add_argument("--rate", type=float, default=10.0,
                        help="publications per minute per publisher")
    parser.add_argument("--minutes", type=float, default=None,
                        help="simulated publication window (default 4.0, smoke 1.0)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--chunk-rows", type=int, default=default_chunk_rows)
    parser.add_argument("--engine", default="fused", choices=("fused", "event"),
                        help="execution engine (fused window drain | per-event oracle)")
    parser.add_argument("--shards", type=int, default=4, metavar="N",
                        help="shard count for the parallel A/B measurement "
                             "(default 4; the memory/spill points stay serial)")
    parser.add_argument("--shard-backend", default="process",
                        choices=("process", "inline"),
                        help="worker backend for the sharded A/B point")
    parser.add_argument("--no-shard-bench", action="store_true",
                        help="skip the sharded-engine A/B measurement")
    parser.add_argument("--profile", action="store_true",
                        help="print the per-stage hot-loop timer table per mode")
    parser.add_argument("--out", default="BENCH_e2e.json", help="merge results here")
    parser.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="SECONDS",
        help="also measure a checkpointing run at this simulated-time "
             "cadence (default: minutes*60/4, i.e. ~4 snapshots)")
    parser.add_argument("--no-checkpoint-bench", action="store_true",
                        help="skip the checkpoint-cost measurement")
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--spill", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.smoke:
        args.size = "smoke"
    if args.minutes is None:
        args.minutes = 1.0 if args.size == "smoke" else 4.0

    if args.child:
        return child_main(args)

    records: dict[str, dict] = {}
    for spill in (False, True):
        mode = "spill" if spill else "memory"
        record = run_child(args, spill)
        records[mode] = record
        print(f"{mode:6s} {args.size:>5s}/{args.strategy}/{args.engine}: "
              f"run {record['run_s']:7.2f}s, analysis {record['analysis_s']:6.2f}s, "
              f"{record.get('deliveries_per_s', 0.0):,.0f} deliveries/s, "
              f"peak RSS {record['peak_rss_kb'] / 1024.0:8.1f} MiB, "
              f"{record['log_rows']} rows, {record['spilled_chunks']} spilled chunks")

    # Spill must change residency, not results: same deliveries, same
    # earnings, same windowed series bytes.
    for field in ("published", "deliveries", "deliveries_valid", "earning",
                  "log_rows", "series_sha256"):
        if records["memory"][field] != records["spill"][field]:
            raise AssertionError(
                f"scale modes diverged on {field}: "
                f"memory={records['memory'][field]} spill={records['spill'][field]}"
            )
    # The guarded throughput points must be checkpoint-free: a non-zero
    # count here would mean snapshot writes leaked into run_s and the
    # floor comparison (check_bench_regression.py asserts this too).
    for mode, record in records.items():
        if record.get("checkpoints", 0) != 0:
            raise AssertionError(
                f"{mode} point unexpectedly wrote {record['checkpoints']} "
                "checkpoint(s); the throughput floor assumes none"
            )
    mem_kb = records["memory"]["peak_rss_kb"]
    spill_kb = records["spill"]["peak_rss_kb"]
    saving = 1.0 - spill_kb / mem_kb if mem_kb else 0.0
    print(f"peak-RSS saving with spill: {saving:.1%} "
          f"({mem_kb / 1024.0:.1f} -> {spill_kb / 1024.0:.1f} MiB), "
          f"series byte-identical")

    # Checkpoint-cost measurement: one more run with snapshots at a
    # ~4-per-run cadence.  Its record stays OUT of `points` (same
    # (scenario, strategy, engine, spill) identity as the memory point —
    # it would collide in the throughput guard) and lands under its own
    # "checkpoint" key: write cost is a separate budget, not a throughput
    # datum.
    checkpoint_payload = None
    if not args.no_checkpoint_bench:
        every_s = args.checkpoint_every or args.minutes * 60.0 / 4.0
        record = run_child(args, spill=False, checkpoint_every_s=every_s)
        for field in ("published", "deliveries", "deliveries_valid",
                      "earning", "log_rows", "series_sha256"):
            if record[field] != records["memory"][field]:
                raise AssertionError(
                    f"checkpointed run diverged on {field}: "
                    f"memory={records['memory'][field]} checkpointed={record[field]}"
                )
        snapshots = record.get("checkpoints", 0)
        if snapshots <= 0:
            raise AssertionError(
                f"checkpoint bench wrote no snapshots at every={every_s:g}s"
            )
        per_snap_s = record["checkpoint_write_s"] / snapshots
        print(f"ckpt   {args.size:>5s}/{args.strategy}/{args.engine}: "
              f"{snapshots} snapshots, {per_snap_s:.2f}s/snapshot, "
              f"{record['checkpoint_mb']:.1f} MB latest, "
              f"series byte-identical")
        checkpoint_payload = {
            "every_s": every_s,
            "snapshots": snapshots,
            "write_s_total": round(record["checkpoint_write_s"], 3),
            "write_s_per_snapshot": round(per_snap_s, 3),
            "snapshot_mb": record["checkpoint_mb"],
            "record": record,
        }

    # Sharded A/B: same workload, broker overlay partitioned across
    # `--shards` workers.  The record stays OUT of `points` (same
    # identity key as the serial memory point) and lands under "shard";
    # check_bench_regression.py reads it together with the recorded
    # `cpu_count` — the speedup floor only means anything when the
    # machine actually had a core per shard, otherwise the guard flips
    # to an overhead ceiling.
    shard_payload = None
    if not args.no_shard_bench and args.shards > 0:
        record = run_child(args, spill=False, shards=args.shards)
        for field in ("published", "deliveries", "deliveries_valid",
                      "earning", "log_rows", "series_sha256"):
            if record[field] != records["memory"][field]:
                raise AssertionError(
                    f"sharded run diverged on {field}: "
                    f"serial={records['memory'][field]} sharded={record[field]}"
                )
        speedup = (records["memory"]["run_s"] / record["run_s"]
                   if record["run_s"] > 0.0 else 0.0)
        print(f"shard  {args.size:>5s}/{args.strategy}/{args.engine}: "
              f"{args.shards} shards ({args.shard_backend}), "
              f"run {record['run_s']:7.2f}s vs serial "
              f"{records['memory']['run_s']:7.2f}s "
              f"({speedup:.2f}x run phase), series byte-identical")
        shard_payload = {
            "shards": args.shards,
            "backend": args.shard_backend,
            "run_speedup": round(speedup, 3),
            "serial_run_s": records["memory"]["run_s"],
            "record": record,
        }

    payload = {
        "meta": {
            "bench": "bench_scale",
            "size": args.size,
            "strategy": args.strategy,
            "rate_per_min_per_publisher": args.rate,
            "minutes": args.minutes,
            "seed": args.seed,
            "chunk_rows": args.chunk_rows,
            "engine": args.engine,
            "python": platform.python_version(),
            "machine": platform.machine(),
            # Parallel results are meaningless without the hardware they
            # ran on: the shard guard keys off cpu_count, and the load
            # averages flag a contended runner in the artifact trail.
            "cpu_count": os.cpu_count(),
            "load_avg": _load_avg(),
        },
        "points": [records["memory"], records["spill"]],
        "peak_rss_saving": round(saving, 4),
        "series_identical": True,
    }
    if checkpoint_payload is not None:
        payload["checkpoint"] = checkpoint_payload
    if shard_payload is not None:
        payload["shard"] = shard_payload
    out = Path(args.out)
    merge_out(out, payload)
    print(f"merged scale results into {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
