"""Shared benchmark plumbing.

Figure benches run each harness **once** (``benchmark.pedantic`` with one
round): these are macro-simulations whose interesting output is the figure
series itself, recorded into ``benchmark.extra_info`` so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction record
at small scale.  Micro benches auto-calibrate as usual.

``BENCH_SCALE`` (default 0.02 — ~86 simulated seconds per point) can be
overridden via the ``REPRO_BENCH_SCALE`` environment variable to regenerate
the figures at paper scale (1.0) on a beefier time budget.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ScaleSpec

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def bench_scale() -> ScaleSpec:
    return ScaleSpec(scale=BENCH_SCALE, seed=BENCH_SEED)


def record_series(benchmark, result) -> None:
    """Attach a figure's series to the benchmark record."""
    benchmark.extra_info["figure"] = result.figure_id
    benchmark.extra_info["x"] = result.x_values
    benchmark.extra_info["series"] = {k: [round(v, 4) for v in vs] for k, vs in result.series.items()}
