"""Figure 5 benches (SSD): total earning and message number vs publishing
rate for EB / PC / FIFO / RL.

Shape checks mirror the paper: EB dominates at high load, FIFO/RL earnings
collapse under congestion, and EB's extra traffic stays well under 2x.
"""

from __future__ import annotations

from benchmarks.conftest import record_series
from repro.experiments import figure5

RATES = (3.0, 9.0, 15.0)


def test_fig5a_ssd_earning_vs_rate(benchmark, bench_scale):
    panel_a, _ = benchmark.pedantic(
        lambda: figure5.run_both_panels(bench_scale, rates=RATES),
        rounds=1,
        iterations=1,
    )
    record_series(benchmark, panel_a)
    top = panel_a.x_values.index(max(panel_a.x_values))
    eb, pc = panel_a.series["eb"][top], panel_a.series["pc"][top]
    fifo, rl = panel_a.series["fifo"][top], panel_a.series["rl"][top]
    assert eb > fifo and eb > rl  # the headline result
    assert pc > fifo and pc > rl
    assert eb >= pc  # EB leads PC in SSD


def test_fig5b_ssd_traffic_vs_rate(benchmark, bench_scale):
    _, panel_b = benchmark.pedantic(
        lambda: figure5.run_both_panels(bench_scale, rates=RATES),
        rounds=1,
        iterations=1,
    )
    record_series(benchmark, panel_b)
    top = panel_b.x_values.index(max(panel_b.x_values))
    eb = panel_b.series["eb"][top]
    fifo = panel_b.series["fifo"][top]
    rl = panel_b.series["rl"][top]
    # "increases only slightly": paper reports +23 % vs FIFO, +64 % vs RL.
    assert fifo <= eb <= 2.0 * fifo
    assert eb <= 2.5 * rl
