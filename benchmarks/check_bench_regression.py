"""Bench-smoke regression guard.

Compares a fresh ``bench_e2e.py --smoke`` result against the committed
baseline (``benchmarks/bench_e2e_smoke_baseline.json``) and fails when
any matching point's ``wall_s`` regressed by more than the tolerance
(default 25 %).  Points are matched on (strategy, subscriptions,
matcher_backend, metrics_backend, scenario); points present in only one
file — or points whose record shape doesn't carry a comparable key at
all (a new scenario family, e.g. the ``scale`` RSS points) — are
reported as notes but never fail the guard, so adding a bench point or
scenario doesn't require a lock-step baseline refresh.

Usage (CI runs exactly this)::

    PYTHONPATH=src python benchmarks/bench_e2e.py --smoke --out BENCH_e2e.json
    python benchmarks/check_bench_regression.py \
        --baseline benchmarks/bench_e2e_smoke_baseline.json --current BENCH_e2e.json

Refresh the baseline by re-running the smoke bench on a quiet machine and
committing the output as the baseline file.  ``--tolerance`` (or the
``BENCH_TOLERANCE`` environment variable, a fraction like ``0.25``)
widens the bar for noisy runners.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def point_key(point: dict) -> tuple | None:
    """Comparison key of a bench point, or None when the point does not
    carry enough identity to be matched (a new scenario family whose
    records use a different shape must degrade to a note, not a
    ``KeyError`` that fails the whole guard)."""
    if not isinstance(point, dict):
        return None
    strategy = point.get("strategy")
    subscriptions = point.get("subscriptions")
    if strategy is None or subscriptions is None:
        return None
    return (
        point.get("scenario", "ssd"),
        strategy,
        subscriptions,
        point.get("matcher_backend", "vector"),
        point.get("metrics_backend", "ledger"),
    )


def keyed_points(points: list, label: str) -> dict:
    """Index comparable points; report the rest instead of crashing."""
    out: dict = {}
    for point in points:
        key = point_key(point)
        if key is None or not isinstance(point.get("wall_s"), (int, float)):
            shown = point.get("scenario", "?") if isinstance(point, dict) else point
            print(f"note: {label} point from scenario {shown!r} has no "
                  f"comparable key/wall_s — not guarded")
            continue
        out[key] = point
    return out


def scale_point_key(point: dict) -> tuple | None:
    """Identity of one scale point (size tier, strategy, engine, mode)."""
    if not isinstance(point, dict):
        return None
    scenario = point.get("scenario")
    if scenario is None or not isinstance(
        point.get("deliveries_per_s"), (int, float)
    ):
        return None
    return (
        scenario,
        point.get("strategy", "eb"),
        point.get("engine", "fused"),
        bool(point.get("log_spill", False)),
    )


def check_scale_throughput(
    baseline: dict, current: dict, floor: float
) -> tuple[int, list[str]]:
    """Minimum-throughput floor on the scale tier's ``deliveries_per_s``.

    The scale points measure the fused hot loop end to end; a silent 2x
    slowdown there would not move the smoke points' sub-second wall
    times.  The floor is deliberately loose (default: current must stay
    above ``floor`` x baseline throughput) because shared runners swing
    hard; it exists to catch collapses, not jitter.  Missing sections or
    mismatched workload shapes degrade to notes — the wall_s guard above
    stays the primary gate.
    """
    base_scale = baseline.get("scale") or {}
    cur_scale = current.get("scale") or {}
    if not base_scale.get("points") or not cur_scale.get("points"):
        print("note: no scale sections on both sides — throughput floor skipped")
        return 0, []
    shape_fields = ("size", "strategy", "rate_per_min_per_publisher",
                    "minutes", "seed", "engine")
    base_shape = {f: base_scale.get("meta", {}).get(f) for f in shape_fields}
    cur_shape = {f: cur_scale.get("meta", {}).get(f) for f in shape_fields}
    if base_shape != cur_shape:
        print(f"note: scale workload shapes differ — baseline {base_shape}, "
              f"current {cur_shape}; throughput floor skipped")
        return 0, []
    base_points = {scale_point_key(p): p for p in base_scale["points"]}
    cur_points = {scale_point_key(p): p for p in cur_scale["points"]}
    base_points.pop(None, None)
    cur_points.pop(None, None)
    compared = 0
    failures: list[str] = []
    for key, base in sorted(base_points.items()):
        cur = cur_points.get(key)
        if cur is None:
            print(f"note: baseline scale point {key} missing from current run")
            continue
        compared += 1
        limit = base["deliveries_per_s"] * floor
        status = "ok" if cur["deliveries_per_s"] >= limit else "REGRESSED"
        print(f"{status:9s} scale {key}: baseline "
              f"{base['deliveries_per_s']:,.0f} del/s, current "
              f"{cur['deliveries_per_s']:,.0f} del/s (floor {limit:,.0f})")
        if cur["deliveries_per_s"] < limit:
            failures.append(
                f"scale {key}: {cur['deliveries_per_s']:,.0f} deliveries/s "
                f"below {floor:.0%} of baseline {base['deliveries_per_s']:,.0f}"
            )
    return compared, failures


def check_shard_speedup(
    current: dict, floor: float, overhead_ceiling: float
) -> list[str]:
    """Core-aware guard on the sharded engine's run-phase speedup.

    The bench records ``os.cpu_count()`` alongside the sharded A/B point
    because the same measurement means opposite things on different
    hardware: with at least one core per shard the run phase must beat
    the serial engine by ``floor`` (default 2.0, ``BENCH_SHARD_FLOOR``),
    while on a core-starved runner (CI containers are often 1–2 vCPUs)
    genuine parallel speedup is physically impossible and the guard
    instead bounds the *overhead* — the sharded run may not be more than
    ``overhead_ceiling`` times slower than serial, which still catches a
    collapsed boundary-exchange path.  Either way the sharded run's
    series digest must equal the serial point's: identity is never
    hardware-conditional.
    """
    scale = current.get("scale") or {}
    shard = scale.get("shard")
    if not isinstance(shard, dict):
        print("note: no sharded scale point in current run — shard guard skipped")
        return []
    failures: list[str] = []
    record = shard.get("record") or {}
    points = {scale_point_key(p): p for p in scale.get("points") or []}
    serial = points.get(scale_point_key(record))
    if serial is not None and record.get("series_sha256") != serial.get("series_sha256"):
        failures.append(
            "sharded scale run's series digest differs from the serial run "
            f"({record.get('series_sha256')} vs {serial.get('series_sha256')})"
        )
    if record.get("checkpoints", 0) not in (0, None):
        failures.append(
            f"sharded scale point wrote {record['checkpoints']} checkpoint(s); "
            "the speedup comparison assumes none"
        )
    speedup = shard.get("run_speedup")
    shards = shard.get("shards")
    cpus = scale.get("meta", {}).get("cpu_count")
    if not isinstance(speedup, (int, float)) or not isinstance(shards, int):
        print("note: sharded scale point lacks run_speedup/shards — not guarded")
        return failures
    if isinstance(cpus, int) and cpus >= shards:
        status = "ok" if speedup >= floor else "REGRESSED"
        print(f"{status:9s} shard speedup: {speedup:.2f}x at {shards} shards "
              f"on {cpus} cores (floor {floor:.1f}x)")
        if speedup < floor:
            failures.append(
                f"sharded run phase only {speedup:.2f}x serial at {shards} "
                f"shards on {cpus} cores (floor {floor:.1f}x)"
            )
    else:
        limit = 1.0 / overhead_ceiling
        status = "ok" if speedup >= limit else "REGRESSED"
        print(f"{status:9s} shard overhead: {speedup:.2f}x at {shards} shards "
              f"on {cpus} core(s) — floor waived (cores < shards), "
              f"ceiling {overhead_ceiling:.1f}x slower")
        if speedup < limit:
            failures.append(
                f"sharded run phase {1.0 / speedup if speedup else float('inf'):.1f}x "
                f"slower than serial on {cpus} core(s); exceeds the "
                f"{overhead_ceiling:.1f}x overhead ceiling"
            )
    # The serial build phase is shared by every mode; surface it so the
    # artifact trail records where setup time goes (it is not guarded —
    # subscription-install throughput has its own microbench).
    for key, point in sorted(points.items()):
        if key is not None and isinstance(point.get("build_s"), (int, float)):
            print(f"note: build phase {point['build_s']:.1f}s for scale {key}")
    return failures


def check_checkpoint_cost(current: dict) -> list[str]:
    """Checkpointing must be free when disabled and accounted when on.

    Two invariants: (a) the guarded throughput ``points`` were produced
    with checkpointing disabled (``checkpoints`` 0/absent) — a snapshot
    cadence leaking into those records would corrupt the deliveries/s
    floor while *looking* like an engine regression; (b) when the bench
    ran the separate checkpoint-cost measurement, the checkpointed run's
    series digest must equal the plain run's (a snapshot is a residency
    pause, never a result knob) and its per-snapshot write cost is
    surfaced here so the artifact trail records it per CI run.
    """
    scale = current.get("scale") or {}
    failures: list[str] = []
    for point in scale.get("points") or []:
        if isinstance(point, dict) and point.get("checkpoints", 0) != 0:
            failures.append(
                f"scale point {scale_point_key(point)} wrote "
                f"{point['checkpoints']} checkpoint(s); guarded throughput "
                "points must run with checkpointing disabled"
            )
    ck = scale.get("checkpoint")
    if not isinstance(ck, dict):
        return failures
    record = ck.get("record") or {}
    points = {scale_point_key(p): p for p in scale.get("points") or []}
    plain = points.get(scale_point_key(record))
    if plain is not None and record.get("series_sha256") != plain.get("series_sha256"):
        failures.append(
            "checkpointed scale run's series digest differs from the plain "
            f"run ({record.get('series_sha256')} vs {plain.get('series_sha256')})"
        )
    print(f"note: checkpoint cost at {ck.get('every_s', '?')}s cadence: "
          f"{ck.get('snapshots', '?')} snapshot(s), "
          f"{ck.get('write_s_per_snapshot', '?')}s/snapshot, "
          f"{ck.get('snapshot_mb', '?')} MB latest")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="benchmarks/bench_e2e_smoke_baseline.json")
    parser.add_argument("--current", default="BENCH_e2e.json")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("BENCH_TOLERANCE", "0.25")),
        help="allowed fractional wall_s regression (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--abs-slack", type=float,
        default=float(os.environ.get("BENCH_ABS_SLACK", "0.05")),
        help="absolute wall_s slack in seconds added on top of the "
             "fractional tolerance; smoke points run ~0.1s, where pure "
             "percentages amplify scheduler noise (default 0.05)",
    )
    parser.add_argument(
        "--scale-floor", type=float,
        default=float(os.environ.get("BENCH_SCALE_FLOOR", "0.5")),
        help="scale points must keep at least this fraction of the "
             "baseline deliveries_per_s (default 0.5)",
    )
    parser.add_argument(
        "--shard-floor", type=float,
        default=float(os.environ.get("BENCH_SHARD_FLOOR", "2.0")),
        help="minimum run-phase speedup for the sharded scale point, "
             "enforced only when the recording machine had at least one "
             "core per shard (default 2.0)",
    )
    parser.add_argument(
        "--shard-overhead-ceiling", type=float,
        default=float(os.environ.get("BENCH_SHARD_OVERHEAD", "4.0")),
        help="on core-starved machines (cores < shards) the sharded run "
             "may be at most this many times slower than serial "
             "(default 4.0)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())

    # wall_s is only comparable between runs of the same workload shape;
    # comparing a full-matrix run against the smoke baseline would report
    # its 2x-longer simulations as regressions.
    shape_fields = ("mode", "minutes", "rate_per_min_per_publisher", "seed")
    base_shape = {f: baseline["meta"].get(f) for f in shape_fields}
    cur_shape = {f: current["meta"].get(f) for f in shape_fields}
    if base_shape != cur_shape:
        print(f"error: workload shapes differ — baseline {base_shape}, "
              f"current {cur_shape}; re-run bench_e2e with matching flags")
        return 2

    base_points = keyed_points(baseline.get("points", []), "baseline")
    cur_points = keyed_points(current.get("points", []), "current")

    failures: list[str] = []
    compared = 0
    for key, base in sorted(base_points.items()):
        cur = cur_points.get(key)
        if cur is None:
            print(f"note: baseline point {key} missing from current run")
            continue
        compared += 1
        limit = base["wall_s"] * (1.0 + args.tolerance) + args.abs_slack
        status = "ok" if cur["wall_s"] <= limit else "REGRESSED"
        print(f"{status:9s} {key}: baseline {base['wall_s']:.3f}s, "
              f"current {cur['wall_s']:.3f}s (limit {limit:.3f}s)")
        if cur["wall_s"] > limit:
            failures.append(
                f"{key}: wall_s {cur['wall_s']:.3f}s exceeds "
                f"{base['wall_s']:.3f}s +{args.tolerance:.0%}"
            )
    for key in sorted(set(cur_points) - set(base_points)):
        print(f"note: new scenario/point {key} not in baseline (not guarded)")

    scale_compared, scale_failures = check_scale_throughput(
        baseline, current, args.scale_floor
    )
    failures.extend(scale_failures)
    failures.extend(
        check_shard_speedup(current, args.shard_floor, args.shard_overhead_ceiling)
    )
    failures.extend(check_checkpoint_cost(current))

    if compared == 0:
        print("error: no comparable points between baseline and current run")
        return 2
    if failures:
        print(f"\n{len(failures)} point(s) regressed beyond tolerance:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall {compared} guarded points within +{args.tolerance:.0%} of "
          f"baseline; {scale_compared} scale point(s) above the "
          f"{args.scale_floor:.0%} throughput floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
